#include "src/core/dcat_controller.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "src/common/log.h"

namespace dcat {

const char* AllocationPolicyName(AllocationPolicy policy) {
  switch (policy) {
    case AllocationPolicy::kMaxFairness:
      return "max-fairness";
    case AllocationPolicy::kMaxPerformance:
      return "max-performance";
  }
  return "?";
}

DcatController::DcatController(CatController* cat, const MonitoringProvider* monitor,
                               DcatConfig config)
    : cat_(cat), monitor_(monitor), config_(config) {}

AdmitStatus DcatController::AddTenant(const TenantSpec& spec) {
  if (tenants_.size() + 1 >= cat_->NumCos()) {
    std::fprintf(stderr, "DcatController: tenant count exceeds COS limit (%u)\n",
                 cat_->NumCos());
    return AdmitStatus::kTooManyTenants;
  }
  uint32_t baseline_total = spec.baseline_ways;
  for (const TenantState& t : tenants_) {
    baseline_total += t.spec.baseline_ways;
  }
  if (baseline_total > cat_->NumWays()) {
    std::fprintf(stderr, "DcatController: baseline ways oversubscribed (%u > %u)\n",
                 baseline_total, cat_->NumWays());
    return AdmitStatus::kOversubscribed;
  }
  if (spec.baseline_ways < config_.min_ways) {
    std::fprintf(stderr, "DcatController: baseline below minimum allocation\n");
    return AdmitStatus::kBelowMinimum;
  }

  // Recycle the lowest unused COS (COS 0 stays the unmanaged default).
  uint8_t cos = 0;
  for (uint8_t candidate = 1; candidate < cat_->NumCos(); ++candidate) {
    const bool in_use = std::any_of(tenants_.begin(), tenants_.end(),
                                    [candidate](const TenantState& t) {
                                      return t.cos == candidate;
                                    });
    if (!in_use) {
      cos = candidate;
      break;
    }
  }
  if (cos == 0) {
    std::fprintf(stderr, "DcatController: no free COS for tenant %u\n", spec.id);
    return AdmitStatus::kNoFreeCos;
  }

  TenantState state{.spec = spec,
                    .cos = cos,
                    .category = Category::kDonor,
                    .ways = config_.min_ways,
                    .detector = PhaseDetector(config_),
                    .book = PhaseBook(config_.phase_change_thr)};
  // Initialize the counter snapshot so the first delta is sane. The MBM
  // snapshot matters too: a recycled COS carries the previous owner's
  // cumulative traffic.
  PerfCounterBlock sum;
  for (uint16_t core : spec.cores) {
    sum += monitor_->ReadCounters(core);
  }
  state.last_counters = sum;
  state.last_mbm = monitor_->MemoryBandwidthBytes(cos);

  for (size_t i = 0; i < spec.cores.size(); ++i) {
    if (!AssociateWithRetry(spec.cores[i], state.cos, spec.id)) {
      std::fprintf(stderr, "DcatController: AssociateCore(%u) failed\n", spec.cores[i]);
      // Unwind the cores already moved; a failed release is parked for the
      // reconciliation pass to keep retrying.
      for (size_t j = 0; j < i; ++j) {
        if (!AssociateWithRetry(spec.cores[j], 0, spec.id)) {
          orphaned_cores_.push_back(spec.cores[j]);
        }
      }
      return AdmitStatus::kBackendError;
    }
  }
  tenants_.push_back(std::move(state));
  // Re-layout masks for the new tenant set, keeping current allocations.
  // When grown tenants already fill the socket there is no room for the
  // newcomer's minimum allocation: shrink the largest over-baseline surplus
  // first — contracted minimums outrank opportunistic growth. Σ baselines
  // <= total ways (checked above), so shrinking to baselines always fits.
  std::vector<uint32_t> targets;
  targets.reserve(tenants_.size());
  uint32_t used = 0;
  for (const TenantState& t : tenants_) {
    targets.push_back(t.ways);
    used += t.ways;
  }
  const std::vector<uint32_t> before = targets;
  while (used > cat_->NumWays()) {
    size_t victim = tenants_.size();
    uint32_t best_surplus = 0;
    for (size_t i = 0; i + 1 < tenants_.size(); ++i) {  // newcomer is last, exempt
      const uint32_t floor =
          std::max(std::min(tenants_[i].spec.baseline_ways, targets[i]), config_.min_ways);
      const uint32_t surplus = targets[i] > floor ? targets[i] - floor : 0;
      if (surplus > best_surplus) {
        best_surplus = surplus;
        victim = i;
      }
    }
    if (victim == tenants_.size()) {
      std::fprintf(stderr, "DcatController: no room for tenant %u's minimum allocation\n",
                   spec.id);
      std::abort();
    }
    --targets[victim];
    --used;
  }
  if (!ApplyMasks(targets)) {
    // Admission writes failed even with retries: undo the tenant. Survivor
    // masks were rolled back by ApplyMasks; release the newcomer's cores.
    for (uint16_t core : spec.cores) {
      if (!AssociateWithRetry(core, 0, spec.id)) {
        orphaned_cores_.push_back(core);
      }
    }
    tenants_.pop_back();
    std::fprintf(stderr, "DcatController: admission masks failed for tenant %u\n", spec.id);
    return AdmitStatus::kBackendError;
  }
  for (size_t i = 0; i + 1 < tenants_.size(); ++i) {
    if (targets[i] != before[i]) {
      sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                          .tenant = tenants_[i].spec.id,
                                          .reason = AllocationReason::kShrinkForReclaim,
                                          .from_ways = before[i],
                                          .to_ways = targets[i]});
      metrics_.counter("controller.alloc.shrink-for-reclaim").Increment();
    }
  }
  sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                      .tenant = spec.id,
                                      .reason = AllocationReason::kAdmit,
                                      .from_ways = 0,
                                      .to_ways = config_.min_ways});
  metrics_.counter("controller.admissions").Increment();
  return AdmitStatus::kOk;
}

bool DcatController::HasTenant(TenantId id) const {
  return std::any_of(tenants_.begin(), tenants_.end(),
                     [id](const TenantState& t) { return t.spec.id == id; });
}

void DcatController::RemoveTenant(TenantId id) {
  const auto it = std::find_if(tenants_.begin(), tenants_.end(),
                               [id](const TenantState& t) { return t.spec.id == id; });
  if (it == tenants_.end()) {
    return;
  }
  const uint32_t released_ways = it->ways;
  // Return the cores to the unmanaged class; the departed tenant's lines
  // are evicted naturally by the ways' next owners. A core whose release
  // fails is parked as an orphan and retried by the reconciliation pass —
  // losing track of it would leave the core filling another tenant's ways.
  for (uint16_t core : it->spec.cores) {
    if (!AssociateWithRetry(core, 0, id)) {
      orphaned_cores_.push_back(core);
    }
  }
  tenants_.erase(it);
  // Re-layout the survivors; the freed ways join the pool implicitly.
  std::vector<uint32_t> targets;
  targets.reserve(tenants_.size());
  for (const TenantState& t : tenants_) {
    targets.push_back(t.ways);
  }
  ApplyMasks(targets);
  sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                      .tenant = id,
                                      .reason = AllocationReason::kEvict,
                                      .from_ways = released_ways,
                                      .to_ways = 0});
  metrics_.counter("controller.evictions").Increment();
}

DcatController::TenantState& DcatController::FindTenant(TenantId id) {
  for (TenantState& t : tenants_) {
    if (t.spec.id == id) {
      return t;
    }
  }
  std::fprintf(stderr, "DcatController: unknown tenant %u\n", id);
  std::abort();
}

const DcatController::TenantState& DcatController::FindTenant(TenantId id) const {
  return const_cast<DcatController*>(this)->FindTenant(id);
}

// --- Step 2: Collect Statistics (with counter-anomaly quarantine) ---

std::optional<CounterAnomalyKind> DcatController::ClassifyAnomaly(
    const TenantState& tenant, const PerfCounterBlock& sum, const PerfCounterBlock& delta,
    uint64_t mbm_delta) const {
  const PerfCounterBlock& last = tenant.last_counters;
  // Cumulative counters never go backwards on a sane backend; a wrap shows
  // up the same way, so both report kNonMonotonic here.
  if (sum.retired_instructions < last.retired_instructions ||
      sum.unhalted_cycles < last.unhalted_cycles || sum.l1_references < last.l1_references ||
      sum.l1_misses < last.l1_misses || sum.l2_references < last.l2_references ||
      sum.l2_misses < last.l2_misses || sum.llc_references < last.llc_references ||
      sum.llc_misses < last.llc_misses) {
    return CounterAnomalyKind::kNonMonotonic;
  }
  // Frozen perf counters: the per-core counter path reports a dead-flat
  // interval while the independent MBM path shows the tenant still moving
  // DRAM traffic. Both signals flat is a genuinely stalled or idle interval
  // (a halted vCPU, or a low-IPC workload whose last scheduling quantum
  // overshot the interval boundary) and must be treated as idle, exactly as
  // a fault-free controller would.
  if (tenant.prev_active && mbm_delta > 0 && delta.retired_instructions == 0 &&
      delta.unhalted_cycles == 0.0 && delta.l1_references == 0) {
    return CounterAnomalyKind::kFrozen;
  }
  // Impossible ratios: more misses than references at any level, or IPC far
  // beyond what any core retires.
  if (delta.l1_misses > delta.l1_references || delta.l2_misses > delta.l2_references ||
      delta.llc_misses > delta.llc_references) {
    return CounterAnomalyKind::kGarbage;
  }
  if (delta.unhalted_cycles > 0.0 && delta.Ipc() > config_.counter_sanity_max_ipc) {
    return CounterAnomalyKind::kGarbage;
  }
  return std::nullopt;
}

WorkloadSample DcatController::CollectSample(TenantState& tenant) {
  PerfCounterBlock sum;
  for (uint16_t core : tenant.spec.cores) {
    sum += monitor_->ReadCounters(core);
  }
  const PerfCounterBlock delta = sum - tenant.last_counters;
  // The MBM path is read unconditionally: it is the cross-check the frozen
  // classification relies on, and it stays trustworthy even while the
  // per-core counters are quarantined (separate hardware path).
  const uint64_t mbm = monitor_->MemoryBandwidthBytes(tenant.cos);
  const uint64_t mbm_delta = mbm >= tenant.last_mbm ? mbm - tenant.last_mbm : 0;
  tenant.last_mbm = mbm;
  const auto anomaly = ClassifyAnomaly(tenant, sum, delta, mbm_delta);
  WorkloadSample sample;
  tenant.quarantined = anomaly.has_value();
  if (!anomaly.has_value()) {
    sample.delta = delta;
    tenant.last_counters = sum;
    tenant.anomaly_streak = 0;
    tenant.prev_active = delta.retired_instructions > 0;
    return sample;
  }
  // Quarantine: the sample stays zeroed and is folded into nothing — not
  // EWMAs, not phase detection, not the performance tables. last_counters
  // is *kept*, so the next clean interval yields a multi-interval delta
  // whose ratios (IPC, miss rates, mem/ins) are still correct.
  ++tenant.anomaly_streak;
  // A frozen counter quarantines only while the MBM cross-check proves the
  // tenant alive; the moment the workload genuinely stops, MBM goes flat
  // and the zero delta classifies as a clean idle interval — so frozen
  // quarantine self-limits without a streak cap.
  if (*anomaly == CounterAnomalyKind::kNonMonotonic && tenant.anomaly_streak >= 3) {
    // A persistent backwards level is a true wrap (the counter lost its
    // high bits for good): re-anchor the snapshot so deltas resume from
    // the new base instead of quarantining forever.
    tenant.last_counters = sum;
  }
  sinks_.OnCounterAnomaly(CounterAnomalyEvent{.tick = tick_,
                                              .tenant = tenant.spec.id,
                                              .kind = *anomaly,
                                              .streak = tenant.anomaly_streak});
  metrics_.counter("faults.counter_anomalies").Increment();
  metrics_.counter(std::string("faults.counter_anomalies.") + CounterAnomalyKindName(*anomaly))
      .Increment();
  return sample;
}

// --- Step 3: Detect Phase Change ---

void DcatController::DetectPhase(TenantState& tenant) {
  tenant.phase_changed = tenant.detector.Update(tenant.sample);
  if (!tenant.phase_changed) {
    return;
  }
  // A new phase invalidates the baseline comparison: Reclaim (§3.4,
  // "Reclaim is applied immediately once there is a phase change").
  tenant.category = Category::kReclaim;
  const double signature = tenant.detector.signature();
  const bool known_phase = tenant.book.Find(signature) != PhaseBook::kNotFound;
  tenant.phase_index = tenant.book.FindOrCreate(signature);
  tenant.has_phase = true;
  tenant.has_last_ipc = false;
  tenant.grow_denied = false;
  tenant.measuring_baseline = false;
  sinks_.OnPhaseChange(PhaseChangeEvent{.tick = tick_,
                                        .tenant = tenant.spec.id,
                                        .phase_index = tenant.phase_index,
                                        .signature = signature,
                                        .known_phase = known_phase});
  metrics_.counter("controller.phase_changes").Increment();
  metrics_.counter("tenant." + std::to_string(tenant.spec.id) + ".phase_changes").Increment();
}

// --- Step 1 (Get Baseline) + performance table maintenance ---

void DcatController::UpdateBaselineAndTable(TenantState& tenant) {
  if (!tenant.has_phase || tenant.phase_changed || tenant.detector.idle()) {
    return;
  }
  PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
  if (tenant.measuring_baseline) {
    // This interval ran at baseline ways: it defines the phase baseline.
    phase.baseline_ipc = tenant.sample.ipc();
    phase.baseline_valid = phase.baseline_ipc > 0.0;
    tenant.measuring_baseline = false;
  }
  if (phase.baseline_valid && phase.baseline_ipc > 0.0) {
    phase.table.Record(tenant.ways, tenant.sample.ipc() / phase.baseline_ipc);
  }
}

// --- Step 4: Categorize Workloads (Fig. 6) ---

void DcatController::Categorize(TenantState& tenant) {
  if (tenant.phase_changed) {
    return;  // stays Reclaim; allocation handles it below
  }
  const WorkloadSample& s = tenant.sample;
  const double ref_rate = s.llc_refs_per_kilo_instruction();
  const bool idle_or_low_llc =
      tenant.detector.idle() || ref_rate <= config_.llc_ref_per_kilo_instruction_thr;
  const double miss_rate = s.llc_miss_rate();
  const double imp = (tenant.has_last_ipc && tenant.last_ipc > 0.0)
                         ? (s.ipc() - tenant.last_ipc) / tenant.last_ipc
                         : 0.0;

  // Guarantee enforcement (§3: dCat must "never impact the performance of
  // the workloads" relative to their reserved allocation). A tenant that
  // donated ways below its contract but turns out to suffer for it — e.g.
  // conflict misses appear only after the shrink — is reclaimed right away.
  if (tenant.has_phase && !tenant.detector.idle() &&
      (tenant.category == Category::kDonor || tenant.category == Category::kKeeper) &&
      tenant.ways < tenant.spec.baseline_ways) {
    const PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
    if (phase.baseline_valid && phase.baseline_ipc > 0.0 &&
        s.ipc() / phase.baseline_ipc < 1.0 - 2.0 * config_.ipc_improvement_thr) {
      tenant.category = Category::kReclaim;
      if (!tenant.detector.idle() && s.ipc() > 0.0) {
        tenant.last_ipc = s.ipc();
        tenant.has_last_ipc = true;
      }
      return;
    }
  }

  switch (tenant.category) {
    case Category::kReclaim: {
      if (tenant.ways < tenant.spec.baseline_ways) {
        // The reclaim never landed (a backend failure rolled the apply
        // back): keep the intent and let allocation retry this interval.
        return;
      }
      // The interval after a reclaim: baseline was (re-)measured by
      // UpdateBaselineAndTable; resume normal operation as Keeper.
      tenant.category = Category::kKeeper;
      [[fallthrough]];
    }
    case Category::kKeeper: {
      if (idle_or_low_llc) {
        // Low LLC traffic usually means the tenant cannot be hurt by
        // donating — but a few workloads (small working sets that straddle
        // the L2) depend on the little LLC they use. If the table proves
        // the minimum allocation costs real performance, keep the ways.
        const auto at_min = CurrentPhase(tenant).table.Get(config_.min_ways);
        if (tenant.detector.idle() || !at_min.has_value() ||
            *at_min >= 1.0 - 2.0 * config_.ipc_improvement_thr) {
          tenant.category = Category::kDonor;
        }
        break;
      }
      if (miss_rate > config_.llc_miss_rate_thr) {
        // Might benefit from growth — unless the performance table already
        // shows saturation. Two sources of evidence: a measured entry for
        // ways+1 (direct), or the slope of the last measured step (a
        // Receiver that just stopped at `ways` leaves a flat step behind
        // and must not immediately re-explore).
        const PerformanceTable& table = CurrentPhase(tenant).table;
        // Greedy exploration lowers the bar for re-exploration to the gain
        // floor (shallow curves stay worth walking); paper-faithful mode
        // requires the full improvement threshold.
        const double bar = config_.greedy_exploration ? config_.exploration_gain_floor
                                                      : config_.ipc_improvement_thr;
        bool profitable = true;
        if (const auto up = table.Improvement(tenant.ways, tenant.ways + 1); up.has_value()) {
          profitable = *up >= bar;
        } else if (const auto last = table.Improvement(tenant.ways - 1, tenant.ways);
                   last.has_value()) {
          profitable = *last >= bar;
        }
        if (profitable) {
          tenant.category = Category::kUnknown;
        }
        break;
      }
      if (miss_rate < config_.donor_shrink_fraction * config_.llc_miss_rate_thr &&
          tenant.ways > config_.min_ways) {
        // High LLC use but (almost) no misses: gradually donate — unless the
        // table already proved the next size down costs real performance
        // (conflict misses can appear only after a shrink, so the first
        // donation is exploratory but is never repeated).
        const PerformanceTable& table = CurrentPhase(tenant).table;
        const auto down = table.Improvement(tenant.ways, tenant.ways - 1);
        if (!down.has_value() || *down > -config_.ipc_improvement_thr) {
          tenant.category = Category::kDonor;
        }
      }
      break;
    }
    case Category::kDonor: {
      if (!idle_or_low_llc && miss_rate > config_.llc_miss_rate_thr) {
        // Misses became non-trivial: stop donating (paper: "until the LLC
        // miss rate becomes non-trivial (hence labeled as Keeper)").
        tenant.category = Category::kKeeper;
      }
      break;
    }
    case Category::kUnknown: {
      if (miss_rate < config_.llc_miss_rate_thr && !idle_or_low_llc) {
        tenant.category = Category::kKeeper;  // current size suffices
        break;
      }
      if (idle_or_low_llc) {
        tenant.category = Category::kDonor;
        break;
      }
      const bool grew = tenant.ways > tenant.prev_interval_ways;
      const uint32_t streaming_ways =
          tenant.spec.baseline_ways * config_.streaming_multiplier;
      // A workload that has accumulated a real gain over its baseline IPC is
      // by definition reusing the cache — never condemn it as Streaming even
      // if individual steps fall under the threshold.
      const PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
      const double cumulative_norm =
          (phase.baseline_valid && phase.baseline_ipc > 0.0) ? s.ipc() / phase.baseline_ipc : 1.0;
      const bool no_reuse_evidence =
          cumulative_norm < 1.0 + config_.exploration_gain_floor;
      if (grew && tenant.has_last_ipc) {
        if (imp >= config_.ipc_improvement_thr) {
          tenant.category = Category::kReceiver;
        } else if (no_reuse_evidence) {
          if (tenant.ways >= streaming_ways) {
            // Grew all the way to the streaming threshold without any
            // accumulated benefit: cyclic access pattern, no reuse.
            tenant.category = Category::kStreaming;
          }
          // Not yet at the threshold: keep exploring to unmask it.
        } else if (!config_.greedy_exploration ||
                   imp < config_.exploration_gain_floor) {
          // The workload demonstrably benefits from cache but this step was
          // below the (effective) bar: stop and keep what it has.
          tenant.category = Category::kKeeper;
        }
        // Greedy exploration with a step in [floor, thr): keep growing.
        break;
      }
      if (!grew && tenant.grow_denied && no_reuse_evidence) {
        // The pool is dry, so the size comparison cannot continue. Condemn
        // only on actual evidence: the last measured growth step was flat
        // (the paper's MLOAD releasing everything "when all available
        // cache are consumed"). A workload whose table still shows a
        // rising slope keeps waiting for capacity instead.
        const PerformanceTable& table = CurrentPhase(tenant).table;
        const auto slope = table.Improvement(tenant.ways - 1, tenant.ways);
        if (slope.has_value() && *slope < config_.ipc_improvement_thr) {
          tenant.category = Category::kStreaming;
        }
      }
      break;
    }
    case Category::kReceiver: {
      if (idle_or_low_llc) {
        tenant.category = Category::kDonor;
        break;
      }
      const bool grew = tenant.ways > tenant.prev_interval_ways;
      if (miss_rate < config_.llc_miss_rate_thr ||
          (grew && tenant.has_last_ipc && imp < config_.ipc_improvement_thr)) {
        tenant.category = Category::kKeeper;  // stop growing (§3.4)
      }
      break;
    }
    case Category::kStreaming: {
      // Only a phase change releases a Streaming workload.
      break;
    }
  }

  if (!tenant.detector.idle() && s.ipc() > 0.0) {
    tenant.last_ipc = s.ipc();
    tenant.has_last_ipc = true;
  }
}

// --- Step 5: Allocate Cache ---

void DcatController::AllocateAndApply() {
  const uint32_t total = cat_->NumWays();
  const size_t n = tenants_.size();
  std::vector<uint32_t> targets(n, 0);
  std::vector<uint32_t> before(n, 0);
  std::vector<std::optional<AllocationReason>> reason(n);
  for (size_t i = 0; i < n; ++i) {
    before[i] = tenants_[i].ways;
  }

  // Snapshot the decision state passes 1-3 mutate: if the apply fails, the
  // allocation never happened and next tick's decisions must start from the
  // pre-apply state (e.g. measuring_baseline armed for ways that were never
  // programmed would corrupt the phase baseline).
  struct SavedDecision {
    Category category;
    bool measuring_baseline;
    bool grow_denied;
  };
  std::vector<SavedDecision> saved(n);
  for (size_t i = 0; i < n; ++i) {
    saved[i] = {tenants_[i].category, tenants_[i].measuring_baseline,
                tenants_[i].grow_denied};
  }

  // Pass 1: fixed demands.
  for (size_t i = 0; i < n; ++i) {
    TenantState& t = tenants_[i];
    t.grow_denied = false;
    if (t.quarantined) {
      // No trustworthy sample this interval: hold the allocation steady.
      // Every category branch below keys off the (zeroed) sample and would
      // misread the tenant as idle and strip it to the minimum.
      targets[i] = std::max(t.ways, config_.min_ways);
      continue;
    }
    switch (t.category) {
      case Category::kReclaim: {
        if (t.detector.idle()) {
          // Phase change into idleness: nothing to reclaim for.
          t.category = Category::kDonor;
          targets[i] = config_.min_ways;
          reason[i] = AllocationReason::kDonate;
          break;
        }
        const PhaseBook::PhaseRecord& phase = CurrentPhase(t);
        const auto preferred =
            phase.baseline_valid ? phase.table.PreferredWays(config_.ipc_improvement_thr)
                                 : std::nullopt;
        if (preferred.has_value()) {
          // Fig. 12 fast path: the phase was seen before — jump straight to
          // its preferred allocation (never below baseline: the guarantee
          // must hold even if the table is stale).
          targets[i] = std::max(*preferred, t.spec.baseline_ways);
          t.category = Category::kKeeper;
        } else {
          targets[i] = t.spec.baseline_ways;
          t.measuring_baseline = true;
          // Category stays Reclaim for one interval; Categorize moves it to
          // Keeper after the baseline measurement lands.
        }
        reason[i] = AllocationReason::kReclaim;
        metrics_.counter("controller.reclaims").Increment();
        break;
      }
      case Category::kDonor:
        if (t.detector.idle() ||
            t.sample.llc_refs_per_kilo_instruction() <=
                config_.llc_ref_per_kilo_instruction_thr) {
          targets[i] = config_.min_ways;  // idle donor: release everything
        } else {
          targets[i] = std::max(t.ways > 0 ? t.ways - 1 : 0, config_.min_ways);  // gradual
        }
        reason[i] = AllocationReason::kDonate;
        break;
      case Category::kStreaming:
        targets[i] = config_.min_ways;
        reason[i] = AllocationReason::kDonate;
        break;
      case Category::kKeeper:
      case Category::kUnknown:
      case Category::kReceiver:
        targets[i] = std::max(t.ways, config_.min_ways);
        break;
    }
  }

  // Pass 2: make reclaim demands fit. Σ baselines <= total ways (admission
  // control), so shrinking over-baseline tenants always suffices.
  auto used = [&targets]() {
    uint32_t sum = 0;
    for (uint32_t w : targets) {
      sum += w;
    }
    return sum;
  };
  while (used() > total) {
    // Shrink the non-reclaiming tenant with the largest surplus over its
    // baseline by one way.
    size_t victim = n;
    uint32_t best_surplus = 0;
    for (size_t i = 0; i < n; ++i) {
      if (tenants_[i].category == Category::kReclaim) {
        continue;
      }
      const uint32_t floor =
          std::max(std::min(tenants_[i].spec.baseline_ways, targets[i]), config_.min_ways);
      const uint32_t surplus = targets[i] > floor ? targets[i] - floor : 0;
      if (surplus > best_surplus) {
        best_surplus = surplus;
        victim = i;
      }
    }
    if (victim == n) {
      // No surplus anywhere: shrink over-baseline reclaims... cannot happen
      // with admission control; guard against config bugs.
      std::fprintf(stderr, "DcatController: cannot satisfy reclaim demands\n");
      std::abort();
    }
    --targets[victim];
    reason[victim] = AllocationReason::kShrinkForReclaim;
  }

  // Pass 3: growth. Unknowns have priority over Receivers (§3.5: identify
  // streaming workloads sooner); within a class, round-robin one way at a
  // time (the max-fairness rule; also the discovery mode of max-perf).
  uint32_t pool = total - used();
  for (Category cls : {Category::kUnknown, Category::kReceiver}) {
    for (size_t i = 0; i < n && pool > 0; ++i) {
      TenantState& t = tenants_[i];
      if (t.category != cls || t.measuring_baseline || t.quarantined) {
        continue;
      }
      // Only grow once the phase baseline is established.
      if (!t.has_phase || !CurrentPhase(t).baseline_valid) {
        continue;
      }
      ++targets[i];
      --pool;
      reason[i] = AllocationReason::kGrowFromPool;
    }
    // Anyone in this class who wanted a way but got none?
    for (size_t i = 0; i < n; ++i) {
      TenantState& t = tenants_[i];
      if (t.category == cls && !t.measuring_baseline && !t.quarantined &&
          targets[i] <= t.ways && pool == 0) {
        t.grow_denied = true;
      }
    }
  }

  // Pass 4: max-performance rebalancing once discovery has populated the
  // tables and the pool is exhausted.
  if (config_.policy == AllocationPolicy::kMaxPerformance && pool == 0) {
    const std::vector<uint32_t> before_rebalance = targets;
    MaxPerformanceRebalance(targets);
    for (size_t i = 0; i < n; ++i) {
      if (targets[i] != before_rebalance[i]) {
        reason[i] = AllocationReason::kRebalance;
      }
    }
  }

  if (!ApplyMasks(targets)) {
    // The allocation never took effect: roll the decision state back so the
    // next interval re-derives it from allocations that actually ran, and
    // count the failure toward graceful degradation.
    for (size_t i = 0; i < n; ++i) {
      tenants_[i].category = saved[i].category;
      tenants_[i].measuring_baseline = saved[i].measuring_baseline;
      tenants_[i].grow_denied = saved[i].grow_denied;
      if (reason[i] == AllocationReason::kReclaim) {
        // A reclaim that failed to program must not be forgotten: the
        // phase-change edge that triggered it was already consumed by the
        // detector, so restoring the pre-tick category would strand the
        // tenant below its contracted baseline. Park it in Reclaim and
        // retry next interval.
        tenants_[i].category = Category::kReclaim;
      }
    }
    ++consecutive_apply_failures_;
    metrics_.counter("faults.apply_failures").Increment();
    if (consecutive_apply_failures_ >= config_.degraded_after_failures) {
      EnterDegraded();
    }
    return;
  }
  consecutive_apply_failures_ = 0;
  metrics_.gauge("controller.pool_ways").Set(static_cast<double>(total - used()));

  // Publish the decisions: every change carries its reason; a denied grow
  // is published even though the allocation itself did not move.
  for (size_t i = 0; i < n; ++i) {
    const TenantState& t = tenants_[i];
    if (targets[i] != before[i]) {
      const AllocationReason r = reason[i].value_or(
          targets[i] > before[i] ? AllocationReason::kGrowFromPool : AllocationReason::kDonate);
      sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                          .tenant = t.spec.id,
                                          .reason = r,
                                          .from_ways = before[i],
                                          .to_ways = targets[i]});
      metrics_.counter(std::string("controller.alloc.") + AllocationReasonName(r)).Increment();
    }
    if (t.grow_denied) {
      sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                          .tenant = t.spec.id,
                                          .reason = AllocationReason::kGrowDenied,
                                          .from_ways = before[i],
                                          .to_ways = targets[i]});
      metrics_.counter("controller.alloc.grow-denied").Increment();
    }
  }
}

void DcatController::MaxPerformanceRebalance(std::vector<uint32_t>& targets) {
  // Candidates: tenants with a valid baseline and at least two measured
  // table entries, currently in a stable or growing state. Their combined
  // ways are redistributed to maximize predicted total normalized IPC.
  std::vector<size_t> candidate_index;
  std::vector<TableChoices> choices;
  uint32_t budget = 0;
  double current_value = 0.0;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    TenantState& t = tenants_[i];
    if (t.category != Category::kKeeper && t.category != Category::kReceiver) {
      continue;
    }
    if (!t.has_phase) {
      continue;
    }
    const PhaseBook::PhaseRecord& phase = CurrentPhase(t);
    if (!phase.baseline_valid || phase.table.size() < 2) {
      continue;
    }
    // Still exploring: the current target has no measurement yet, so the
    // solver would "optimize" it away to the best measured size and undo
    // the exploration every other tick. Wait for the sample.
    if (!phase.table.Has(targets[i])) {
      return;
    }
    TableChoices c;
    for (const auto& [ways, value] : phase.table.Entries()) {
      // Never offer sizes below the contracted baseline: the guarantee
      // outranks total-throughput optimization.
      if (ways >= t.spec.baseline_ways) {
        c.options.emplace_back(ways, value);
      }
    }
    if (c.options.size() < 2) {
      continue;
    }
    candidate_index.push_back(i);
    choices.push_back(std::move(c));
    budget += targets[i];
    const auto at_current = phase.table.Get(targets[i]);
    current_value += at_current.value_or(1.0);
  }
  if (candidate_index.size() < 2) {
    return;
  }
  const std::vector<uint32_t> solution = SolveMaxPerformance(choices, budget);
  if (solution.empty()) {
    return;
  }
  double solution_value = 0.0;
  for (size_t k = 0; k < solution.size(); ++k) {
    const auto v = CurrentPhase(tenants_[candidate_index[k]]).table.Get(solution[k]);
    solution_value += v.value_or(0.0);
  }
  // Only move ways for a predicted net win (epsilon guards thrash).
  if (solution_value <= current_value + 1e-6) {
    return;
  }
  for (size_t k = 0; k < solution.size(); ++k) {
    targets[candidate_index[k]] = solution[k];
  }
  DCAT_LOG(kDebug) << "max-perf rebalance: predicted " << current_value << " -> "
                   << solution_value;
}

// --- fault-tolerant write primitives ---

bool DcatController::WriteMaskWithRetry(uint8_t cos, TenantId tenant, uint32_t mask) {
  uint32_t attempts = 0;
  bool ok = false;
  for (uint32_t attempt = 0; attempt <= config_.max_write_retries; ++attempt) {
    ++attempts;
    if (cat_->SetCosMask(cos, mask) != PqosStatus::kOk) {
      metrics_.counter("faults.write_errors").Increment();
      continue;
    }
    // Verify-after-write: a backend may acknowledge and still not program
    // the mask (silent drop); only the readback is believed.
    if (cat_->GetCosMask(cos) != mask) {
      metrics_.counter("faults.silent_drops_detected").Increment();
      continue;
    }
    ok = true;
    break;
  }
  if (attempts > 1 || !ok) {
    sinks_.OnBackendFault(BackendFaultEvent{.tick = tick_,
                                            .tenant = tenant,
                                            .op = BackendOp::kSetCosMask,
                                            .attempts = attempts,
                                            .recovered = ok});
    metrics_.counter(ok ? "faults.write_recovered" : "faults.write_failures").Increment();
  }
  return ok;
}

bool DcatController::AssociateWithRetry(uint16_t core, uint8_t cos, TenantId tenant) {
  uint32_t attempts = 0;
  bool ok = false;
  for (uint32_t attempt = 0; attempt <= config_.max_write_retries; ++attempt) {
    ++attempts;
    if (cat_->AssociateCore(core, cos) != PqosStatus::kOk) {
      metrics_.counter("faults.write_errors").Increment();
      continue;
    }
    if (cat_->GetCoreAssociation(core) != cos) {
      metrics_.counter("faults.silent_drops_detected").Increment();
      continue;
    }
    ok = true;
    break;
  }
  if (attempts > 1 || !ok) {
    sinks_.OnBackendFault(BackendFaultEvent{.tick = tick_,
                                            .tenant = tenant,
                                            .op = BackendOp::kAssociateCore,
                                            .attempts = attempts,
                                            .recovered = ok});
    metrics_.counter(ok ? "faults.write_recovered" : "faults.write_failures").Increment();
  }
  return ok;
}

bool DcatController::ApplyMasks(const std::vector<uint32_t>& targets) {
  const auto masks = LayoutMasks(targets, cat_->NumWays());
  if (!masks.has_value()) {
    // Targets come from this controller's own allocator under invariants it
    // enforces (Σ targets <= ways, every target >= min_ways >= 1); an
    // inexpressible layout is a programmer error, not a backend fault.
    std::fprintf(stderr, "DcatController: allocator produced an inexpressible layout\n");
    std::abort();
  }
  // Phase 1: program every changed mask; remember what landed so a partial
  // failure can be rolled back (leaving overlapping masks across tenants
  // until the next reconcile would break isolation, not just optimality).
  std::vector<size_t> written;
  bool failed = false;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    TenantState& t = tenants_[i];
    if (t.mask == (*masks)[i]) {
      continue;  // already acknowledged at this value
    }
    if (!WriteMaskWithRetry(t.cos, t.spec.id, (*masks)[i])) {
      failed = true;
      break;
    }
    written.push_back(i);
  }
  if (failed) {
    for (size_t i : written) {
      const TenantState& t = tenants_[i];
      if (t.mask != 0) {
        // Best effort: an unrecoverable rollback leaves drift that the
        // per-tick reconciliation keeps repairing.
        WriteMaskWithRetry(t.cos, t.spec.id, t.mask);
      }
    }
    return false;
  }
  // Phase 2: the backend acknowledged everything — commit the bookkeeping.
  for (size_t i = 0; i < tenants_.size(); ++i) {
    tenants_[i].ways = targets[i];
    tenants_[i].mask = (*masks)[i];
  }
  return true;
}

void DcatController::ReconcileBackend() {
  // Keep retrying core releases that failed during tenant removal. A core
  // re-admitted to a live tenant, or already back in COS 0, is done.
  for (auto it = orphaned_cores_.begin(); it != orphaned_cores_.end();) {
    const uint16_t core = *it;
    const bool owned_by_live_tenant =
        std::any_of(tenants_.begin(), tenants_.end(), [core](const TenantState& t) {
          return std::find(t.spec.cores.begin(), t.spec.cores.end(), core) !=
                 t.spec.cores.end();
        });
    if (owned_by_live_tenant || cat_->GetCoreAssociation(core) == 0 ||
        AssociateWithRetry(core, 0, 0)) {
      it = orphaned_cores_.erase(it);
    } else {
      ++it;
    }
  }
  // Audit the backend against the acknowledged state: silent drops and
  // external interference surface here as drift, and get re-programmed.
  for (TenantState& t : tenants_) {
    if (t.mask != 0) {
      const uint32_t actual = cat_->GetCosMask(t.cos);
      if (actual != t.mask) {
        const bool repaired = WriteMaskWithRetry(t.cos, t.spec.id, t.mask);
        sinks_.OnMaskDrift(MaskDriftEvent{.tick = tick_,
                                          .tenant = t.spec.id,
                                          .cos = t.cos,
                                          .expected = t.mask,
                                          .actual = actual,
                                          .association = false,
                                          .core = 0,
                                          .repaired = repaired});
        metrics_
            .counter(repaired ? "faults.mask_drift_repaired" : "faults.mask_drift_unrepaired")
            .Increment();
      }
    }
    for (uint16_t core : t.spec.cores) {
      const uint8_t actual_cos = cat_->GetCoreAssociation(core);
      if (actual_cos != t.cos) {
        const bool repaired = AssociateWithRetry(core, t.cos, t.spec.id);
        sinks_.OnMaskDrift(MaskDriftEvent{.tick = tick_,
                                          .tenant = t.spec.id,
                                          .cos = t.cos,
                                          .expected = t.cos,
                                          .actual = actual_cos,
                                          .association = true,
                                          .core = core,
                                          .repaired = repaired});
        metrics_
            .counter(repaired ? "faults.mask_drift_repaired" : "faults.mask_drift_unrepaired")
            .Increment();
      }
    }
  }
}

// --- graceful degradation (the paper's safety contract as a fallback) ---

void DcatController::EnterDegraded() {
  mode_ = Mode::kDegraded;
  degraded_clean_ticks_ = 0;
  for (TenantState& t : tenants_) {
    // Degraded mode pins everyone at their contracted baseline — exactly a
    // reclaim of the static partition. Dynamic decision state is disarmed.
    t.category = Category::kReclaim;
    t.measuring_baseline = false;
    t.grow_denied = false;
  }
  sinks_.OnModeChange(ModeChangeEvent{.tick = tick_,
                                      .degraded = true,
                                      .consecutive_failures = consecutive_apply_failures_});
  metrics_.counter("faults.degraded_entries").Increment();
  metrics_.gauge("controller.degraded_mode").Set(1.0);
}

void DcatController::ExitDegraded() {
  mode_ = Mode::kDynamic;
  consecutive_apply_failures_ = 0;
  for (TenantState& t : tenants_) {
    // Re-enter dynamic mode as a Keeper measuring a fresh baseline: the
    // tenant has been running at baseline ways throughout degraded mode, so
    // the next interval's sample is a valid baseline measurement. (Reclaim
    // would be flipped to Keeper by the categorizer before allocation saw
    // it, so it is not a usable re-entry state.)
    t.category = Category::kKeeper;
    t.measuring_baseline = true;
    t.has_last_ipc = false;
    t.grow_denied = false;
  }
  sinks_.OnModeChange(
      ModeChangeEvent{.tick = tick_, .degraded = false, .consecutive_failures = 0});
  metrics_.counter("faults.degraded_exits").Increment();
  metrics_.gauge("controller.degraded_mode").Set(0.0);
}

void DcatController::DegradedTick() {
  for (TenantState& t : tenants_) {
    t.category_at_tick_start = t.category;
    t.sample = CollectSample(t);
    t.phase_changed = false;
    t.prev_interval_ways = t.ways;
  }
  const size_t n = tenants_.size();
  std::vector<uint32_t> before(n, 0);
  std::vector<uint32_t> targets(n, 0);
  for (size_t i = 0; i < n; ++i) {
    before[i] = tenants_[i].ways;
    targets[i] = std::max(tenants_[i].spec.baseline_ways, config_.min_ways);
  }
  // Σ baselines <= total ways (admission control), so this always fits.
  if (ApplyMasks(targets)) {
    consecutive_apply_failures_ = 0;
    for (size_t i = 0; i < n; ++i) {
      if (targets[i] != before[i]) {
        sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                            .tenant = tenants_[i].spec.id,
                                            .reason = AllocationReason::kDegradedBaseline,
                                            .from_ways = before[i],
                                            .to_ways = targets[i]});
        metrics_.counter("controller.alloc.degraded-baseline").Increment();
      }
    }
    ++degraded_clean_ticks_;
    if (degraded_clean_ticks_ >= config_.degraded_recovery_ticks) {
      ExitDegraded();
    }
  } else {
    ++consecutive_apply_failures_;
    metrics_.counter("faults.apply_failures").Increment();
    degraded_clean_ticks_ = 0;
  }
  EmitTickEventsAndMetrics();
}

void DcatController::Tick() {
  ++tick_;
  ReconcileBackend();
  if (mode_ == Mode::kDegraded) {
    DegradedTick();
    return;
  }
  for (TenantState& t : tenants_) {
    t.category_at_tick_start = t.category;
    t.sample = CollectSample(t);
    if (t.quarantined) {
      // The interval's telemetry is untrustworthy: freeze every decision
      // input (phase detection, baselines, tables, categories) this tick.
      t.phase_changed = false;
    } else {
      DetectPhase(t);
      UpdateBaselineAndTable(t);
      Categorize(t);
    }
    t.prev_interval_ways = t.ways;
  }
  const auto alloc_start = std::chrono::steady_clock::now();
  AllocateAndApply();
  const double alloc_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - alloc_start)
          .count();
  EmitTickEventsAndMetrics();
  metrics_.histogram("controller.allocate_latency_us", {1.0, 10.0, 100.0, 1000.0, 10000.0})
      .Observe(alloc_us);
}

void DcatController::EmitTickEventsAndMetrics() {
  // Category transitions cover the whole interval: detector-driven moves to
  // Reclaim, the Fig. 6 machine, and allocation-time fixups alike.
  for (const TenantState& t : tenants_) {
    if (t.category != t.category_at_tick_start) {
      sinks_.OnCategoryChange(CategoryChangeEvent{.tick = tick_,
                                                  .tenant = t.spec.id,
                                                  .from = t.category_at_tick_start,
                                                  .to = t.category});
    }
  }
  size_t category_counts[6] = {};
  for (const TenantState& t : tenants_) {
    TickEvent entry;
    entry.tick = tick_;
    entry.tenant = t.spec.id;
    entry.category = t.category;
    entry.ways = t.ways;
    entry.ipc = t.sample.ipc();
    entry.norm_ipc = NormalizedIpc(t);
    entry.llc_miss_rate = t.sample.llc_miss_rate();
    entry.phase_changed = t.phase_changed;
    sinks_.OnTick(entry);
    if (logging_) {
      decision_log_.OnTick(entry);
    }
    ++category_counts[static_cast<size_t>(t.category)];
  }
  metrics_.counter("controller.ticks").Increment();
  metrics_.gauge("controller.tenants").Set(static_cast<double>(tenants_.size()));
  for (const Category c : {Category::kReclaim, Category::kKeeper, Category::kDonor,
                           Category::kReceiver, Category::kStreaming, Category::kUnknown}) {
    metrics_.gauge(std::string("controller.category.") + CategoryName(c))
        .Set(static_cast<double>(category_counts[static_cast<size_t>(c)]));
  }
}

double DcatController::NormalizedIpc(const TenantState& tenant) const {
  if (!tenant.has_phase) {
    return 0.0;
  }
  const PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
  if (!phase.baseline_valid || phase.baseline_ipc <= 0.0) {
    return 0.0;
  }
  return tenant.sample.ipc() / phase.baseline_ipc;
}

TenantSnapshot DcatController::MakeSnapshot(const TenantState& tenant) const {
  TenantSnapshot s;
  s.id = tenant.spec.id;
  s.name = tenant.spec.name;
  s.category = tenant.category;
  s.cos = tenant.cos;
  s.ways = tenant.ways;
  s.baseline_ways = tenant.spec.baseline_ways;
  s.ipc = tenant.sample.ipc();
  s.norm_ipc = NormalizedIpc(tenant);
  s.llc_miss_rate = tenant.sample.llc_miss_rate();
  s.phase_changed = tenant.phase_changed;
  s.has_phase = tenant.has_phase;
  s.grow_denied = tenant.grow_denied;
  if (tenant.has_phase) {
    const PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
    s.baseline_valid = phase.baseline_valid;
    s.baseline_ipc = phase.baseline_ipc;
    s.table = phase.table;
  }
  return s;
}

TenantSnapshot DcatController::Snapshot(TenantId id) const {
  return MakeSnapshot(FindTenant(id));
}

ControllerSnapshot DcatController::Snapshot() const {
  ControllerSnapshot s;
  s.tick = tick_;
  s.policy = config_.policy;
  s.total_ways = cat_->NumWays();
  s.degraded = mode_ == Mode::kDegraded;
  s.tenants.reserve(tenants_.size());
  for (const TenantState& t : tenants_) {
    s.tenants.push_back(MakeSnapshot(t));
    s.allocated_ways += t.ways;
  }
  s.pool_ways = s.total_ways > s.allocated_ways ? s.total_ways - s.allocated_ways : 0;
  return s;
}

uint32_t DcatController::TenantWays(TenantId id) const { return FindTenant(id).ways; }

Category DcatController::TenantCategory(TenantId id) const { return FindTenant(id).category; }

uint32_t DcatController::TenantBaselineWays(TenantId id) const {
  return FindTenant(id).spec.baseline_ways;
}

double DcatController::TenantNormalizedIpc(TenantId id) const {
  return NormalizedIpc(FindTenant(id));
}

const PerformanceTable& DcatController::TenantTable(TenantId id) const {
  return CurrentPhase(FindTenant(id)).table;
}

}  // namespace dcat
