#include "src/core/dcat_controller.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "src/common/log.h"
#include "src/common/rng.h"
#include "src/policies/registry.h"

namespace dcat {

DcatController::DcatController(CatController* cat, const MonitoringProvider* monitor,
                               DcatConfig config)
    : cat_(cat), monitor_(monitor), config_(std::move(config)) {
  policy_ = PolicyRegistry::Global().Create(config_.policy);
  if (policy_ == nullptr) {
    std::fprintf(stderr, "DcatController: unknown policy '%s' (registered: %s)\n",
                 config_.policy.c_str(), PolicyRegistry::Global().NamesList().c_str());
    std::abort();
  }
  clustered_ = policy_->ClustersTenants();
  if (clustered_) {
    cos_acked_mask_.assign(cat_->NumCos(), 0);
  }
}

AdmitStatus DcatController::AddTenant(const TenantSpec& spec) {
  if (clustered_) {
    return AddTenantClustered(spec);
  }
  if (tenants_.size() + 1 >= cat_->NumCos()) {
    std::fprintf(stderr, "DcatController: tenant count exceeds COS limit (%u)\n",
                 cat_->NumCos());
    return AdmitStatus::kTooManyTenants;
  }
  uint32_t baseline_total = spec.baseline_ways;
  for (const TenantState& t : tenants_) {
    baseline_total += t.spec.baseline_ways;
  }
  if (baseline_total > cat_->NumWays()) {
    std::fprintf(stderr, "DcatController: baseline ways oversubscribed (%u > %u)\n",
                 baseline_total, cat_->NumWays());
    return AdmitStatus::kOversubscribed;
  }
  if (spec.baseline_ways < config_.min_ways) {
    std::fprintf(stderr, "DcatController: baseline below minimum allocation\n");
    return AdmitStatus::kBelowMinimum;
  }

  // Recycle the lowest unused COS (COS 0 stays the unmanaged default).
  uint8_t cos = 0;
  for (uint8_t candidate = 1; candidate < cat_->NumCos(); ++candidate) {
    const bool in_use = std::any_of(tenants_.begin(), tenants_.end(),
                                    [candidate](const TenantState& t) {
                                      return t.cos == candidate;
                                    });
    if (!in_use) {
      cos = candidate;
      break;
    }
  }
  if (cos == 0) {
    std::fprintf(stderr, "DcatController: no free COS for tenant %u\n", spec.id);
    return AdmitStatus::kNoFreeCos;
  }

  TenantState state{.spec = spec,
                    .cos = cos,
                    .category = Category::kDonor,
                    .ways = config_.min_ways,
                    .detector = PhaseDetector(config_),
                    .book = PhaseBook(config_.phase_change_thr)};
  // Initialize the counter snapshot so the first delta is sane. The MBM
  // snapshot matters too: a recycled COS carries the previous owner's
  // cumulative traffic.
  PerfCounterBlock sum;
  for (uint16_t core : spec.cores) {
    sum += monitor_->ReadCounters(core);
  }
  state.last_counters = sum;
  state.last_mbm = monitor_->MemoryBandwidthBytes(cos);

  for (size_t i = 0; i < spec.cores.size(); ++i) {
    if (!AssociateWithRetry(spec.cores[i], state.cos, spec.id)) {
      std::fprintf(stderr, "DcatController: AssociateCore(%u) failed\n", spec.cores[i]);
      // Unwind the cores already moved; a failed release is parked for the
      // reconciliation pass to keep retrying.
      for (size_t j = 0; j < i; ++j) {
        if (!AssociateWithRetry(spec.cores[j], 0, spec.id)) {
          orphaned_cores_.push_back(spec.cores[j]);
        }
      }
      return AdmitStatus::kBackendError;
    }
  }
  tenants_.push_back(std::move(state));
  // Re-layout masks for the new tenant set, keeping current allocations.
  // When grown tenants already fill the socket there is no room for the
  // newcomer's minimum allocation: shrink the largest over-baseline surplus
  // first — contracted minimums outrank opportunistic growth. Σ baselines
  // <= total ways (checked above), so shrinking to baselines always fits.
  std::vector<uint32_t> targets;
  targets.reserve(tenants_.size());
  uint32_t used = 0;
  for (const TenantState& t : tenants_) {
    targets.push_back(t.ways);
    used += t.ways;
  }
  const std::vector<uint32_t> before = targets;
  while (used > cat_->NumWays()) {
    size_t victim = tenants_.size();
    uint32_t best_surplus = 0;
    for (size_t i = 0; i + 1 < tenants_.size(); ++i) {  // newcomer is last, exempt
      const uint32_t floor =
          std::max(std::min(tenants_[i].spec.baseline_ways, targets[i]), config_.min_ways);
      const uint32_t surplus = targets[i] > floor ? targets[i] - floor : 0;
      if (surplus > best_surplus) {
        best_surplus = surplus;
        victim = i;
      }
    }
    if (victim == tenants_.size()) {
      std::fprintf(stderr, "DcatController: no room for tenant %u's minimum allocation\n",
                   spec.id);
      std::abort();
    }
    --targets[victim];
    --used;
  }
  if (!ApplyMasks(targets)) {
    // Admission writes failed even with retries: undo the tenant. Survivor
    // masks were rolled back by ApplyMasks; release the newcomer's cores.
    for (uint16_t core : spec.cores) {
      if (!AssociateWithRetry(core, 0, spec.id)) {
        orphaned_cores_.push_back(core);
      }
    }
    tenants_.pop_back();
    std::fprintf(stderr, "DcatController: admission masks failed for tenant %u\n", spec.id);
    return AdmitStatus::kBackendError;
  }
  for (size_t i = 0; i + 1 < tenants_.size(); ++i) {
    if (targets[i] != before[i]) {
      sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                          .tenant = tenants_[i].spec.id,
                                          .reason = AllocationReason::kShrinkForReclaim,
                                          .from_ways = before[i],
                                          .to_ways = targets[i]});
      metrics_.counter("controller.alloc.shrink-for-reclaim").Increment();
    }
  }
  sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                      .tenant = spec.id,
                                      .reason = AllocationReason::kAdmit,
                                      .from_ways = 0,
                                      .to_ways = config_.min_ways});
  metrics_.counter("controller.admissions").Increment();
  JournalContractChange();
  return AdmitStatus::kOk;
}

AdmitStatus DcatController::AddTenantClustered(const TenantSpec& spec) {
  // Clustered mode has no COS-count gate: the ceiling is cores and the
  // baseline budget. The contract checks are the same as the classic path.
  uint32_t baseline_total = spec.baseline_ways;
  for (const TenantState& t : tenants_) {
    baseline_total += t.spec.baseline_ways;
  }
  if (baseline_total > cat_->NumWays()) {
    std::fprintf(stderr, "DcatController: baseline ways oversubscribed (%u > %u)\n",
                 baseline_total, cat_->NumWays());
    return AdmitStatus::kOversubscribed;
  }
  if (spec.baseline_ways < config_.min_ways) {
    std::fprintf(stderr, "DcatController: baseline below minimum allocation\n");
    return AdmitStatus::kBelowMinimum;
  }

  // Group assignment: a private group while the COS budget lasts, else the
  // group with the fewest members (ties: first in tenant order). The policy
  // regroups everyone at the next tick anyway; this only has to be valid.
  std::vector<uint32_t> distinct;
  for (const TenantState& t : tenants_) {
    if (std::find(distinct.begin(), distinct.end(), t.group) == distinct.end()) {
      distinct.push_back(t.group);
    }
  }
  uint32_t group = 0;
  bool fresh_group = distinct.size() + 1 < cat_->NumCos();  // COS 0 reserved
  if (fresh_group) {
    // Policies renumber groups freely (e.g. cluster indices 0..k-1), so a
    // fresh id must clear every live id or the newcomer would silently
    // join an existing cluster at mismatched ways.
    for (const uint32_t g : distinct) {
      next_group_id_ = std::max(next_group_id_, g + 1);
    }
    group = next_group_id_++;
  } else {
    size_t best_members = tenants_.size() + 1;
    for (const uint32_t candidate : distinct) {
      const size_t members = static_cast<size_t>(
          std::count_if(tenants_.begin(), tenants_.end(),
                        [candidate](const TenantState& t) { return t.group == candidate; }));
      if (members < best_members) {
        best_members = members;
        group = candidate;
      }
    }
  }

  TenantState state{.spec = spec,
                    .cos = 0,
                    .group = group,
                    .category = Category::kDonor,
                    .ways = config_.min_ways,
                    .detector = PhaseDetector(config_),
                    .book = PhaseBook(config_.phase_change_thr)};
  tenants_.push_back(std::move(state));

  // Targets at group granularity: members of an existing group share its
  // ways; a fresh group starts at the newcomer's minimum allocation and,
  // when grown groups already fill the socket, shrinks the group with the
  // largest over-baseline surplus first (newcomer's group exempt).
  const size_t n = tenants_.size();
  std::vector<uint32_t> groups(n, 0);
  std::vector<uint32_t> before(n, 0);
  std::vector<uint32_t> group_ways;  // by first-occurrence group order
  std::vector<size_t> gidx(n, 0);
  std::vector<uint32_t> order;
  for (size_t i = 0; i < n; ++i) {
    groups[i] = tenants_[i].group;
    before[i] = tenants_[i].ways;
    const auto it = std::find(order.begin(), order.end(), groups[i]);
    if (it == order.end()) {
      gidx[i] = order.size();
      order.push_back(groups[i]);
      group_ways.push_back(i + 1 == n ? config_.min_ways : tenants_[i].ways);
    } else {
      gidx[i] = static_cast<size_t>(it - order.begin());
    }
  }
  const size_t newcomer_group = gidx[n - 1];
  auto used = [&group_ways]() {
    uint32_t sum = 0;
    for (uint32_t w : group_ways) {
      sum += w;
    }
    return sum;
  };
  while (used() > cat_->NumWays()) {
    size_t victim = group_ways.size();
    uint32_t best_surplus = 0;
    for (size_t g = 0; g < group_ways.size(); ++g) {
      if (g == newcomer_group) {
        continue;
      }
      // The group floor mirrors the per-tenant rule: no member below
      // min(its baseline, the group's ways), never below the CAT floor.
      uint32_t floor = config_.min_ways;
      for (size_t i = 0; i < n; ++i) {
        if (gidx[i] == g) {
          floor = std::max(
              floor, std::min(tenants_[i].spec.baseline_ways, group_ways[g]));
        }
      }
      const uint32_t surplus = group_ways[g] > floor ? group_ways[g] - floor : 0;
      if (surplus > best_surplus) {
        best_surplus = surplus;
        victim = g;
      }
    }
    if (victim == group_ways.size()) {
      std::fprintf(stderr, "DcatController: no room for tenant %u's minimum allocation\n",
                   spec.id);
      std::abort();
    }
    --group_ways[victim];
  }
  std::vector<uint32_t> targets(n, 0);
  for (size_t i = 0; i < n; ++i) {
    targets[i] = group_ways[gidx[i]];
  }
  if (!ApplyMasksClustered(targets, groups)) {
    // Admission writes failed even with retries: undo the tenant. No cores
    // moved yet — association is part of the clustered commit phase.
    tenants_.pop_back();
    std::fprintf(stderr, "DcatController: admission masks failed for tenant %u\n", spec.id);
    return AdmitStatus::kBackendError;
  }
  // Counter snapshots now that the newcomer's COS is final (a shared COS
  // carries the whole group's cumulative MBM traffic).
  TenantState& newcomer = tenants_.back();
  PerfCounterBlock sum;
  for (uint16_t core : spec.cores) {
    sum += monitor_->ReadCounters(core);
  }
  newcomer.last_counters = sum;
  newcomer.last_mbm = monitor_->MemoryBandwidthBytes(newcomer.cos);

  for (size_t i = 0; i + 1 < n; ++i) {
    if (targets[i] != before[i]) {
      sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                          .tenant = tenants_[i].spec.id,
                                          .reason = AllocationReason::kShrinkForReclaim,
                                          .from_ways = before[i],
                                          .to_ways = targets[i]});
      metrics_.counter("controller.alloc.shrink-for-reclaim").Increment();
    }
  }
  sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                      .tenant = spec.id,
                                      .reason = AllocationReason::kAdmit,
                                      .from_ways = 0,
                                      .to_ways = targets[n - 1]});
  metrics_.counter("controller.admissions").Increment();
  JournalContractChange();
  return AdmitStatus::kOk;
}

bool DcatController::HasTenant(TenantId id) const {
  return std::any_of(tenants_.begin(), tenants_.end(),
                     [id](const TenantState& t) { return t.spec.id == id; });
}

void DcatController::RemoveTenant(TenantId id) {
  const auto it = std::find_if(tenants_.begin(), tenants_.end(),
                               [id](const TenantState& t) { return t.spec.id == id; });
  if (it == tenants_.end()) {
    return;
  }
  const uint32_t released_ways = it->ways;
  // Return the cores to the unmanaged class; the departed tenant's lines
  // are evicted naturally by the ways' next owners. A core whose release
  // fails is parked as an orphan and retried by the reconciliation pass —
  // losing track of it would leave the core filling another tenant's ways.
  for (uint16_t core : it->spec.cores) {
    if (!AssociateWithRetry(core, 0, id)) {
      orphaned_cores_.push_back(core);
    }
  }
  tenants_.erase(it);
  // Re-layout the survivors; the freed ways join the pool implicitly.
  std::vector<uint32_t> targets;
  targets.reserve(tenants_.size());
  for (const TenantState& t : tenants_) {
    targets.push_back(t.ways);
  }
  if (clustered_) {
    std::vector<uint32_t> groups;
    groups.reserve(tenants_.size());
    for (const TenantState& t : tenants_) {
      groups.push_back(t.group);
    }
    ApplyMasksClustered(targets, groups);
  } else {
    ApplyMasks(targets);
  }
  sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                      .tenant = id,
                                      .reason = AllocationReason::kEvict,
                                      .from_ways = released_ways,
                                      .to_ways = 0});
  metrics_.counter("controller.evictions").Increment();
  JournalContractChange();
}

DcatController::TenantState& DcatController::FindTenant(TenantId id) {
  for (TenantState& t : tenants_) {
    if (t.spec.id == id) {
      return t;
    }
  }
  std::fprintf(stderr, "DcatController: unknown tenant %u\n", id);
  std::abort();
}

const DcatController::TenantState& DcatController::FindTenant(TenantId id) const {
  return const_cast<DcatController*>(this)->FindTenant(id);
}

// --- Step 2: Collect Statistics (with counter-anomaly quarantine) ---

std::optional<CounterAnomalyKind> DcatController::ClassifyAnomaly(
    const TenantState& tenant, const PerfCounterBlock& sum, const PerfCounterBlock& delta,
    uint64_t mbm_delta) const {
  const PerfCounterBlock& last = tenant.last_counters;
  // Cumulative counters never go backwards on a sane backend; a wrap shows
  // up the same way, so both report kNonMonotonic here.
  if (sum.retired_instructions < last.retired_instructions ||
      sum.unhalted_cycles < last.unhalted_cycles || sum.l1_references < last.l1_references ||
      sum.l1_misses < last.l1_misses || sum.l2_references < last.l2_references ||
      sum.l2_misses < last.l2_misses || sum.llc_references < last.llc_references ||
      sum.llc_misses < last.llc_misses) {
    return CounterAnomalyKind::kNonMonotonic;
  }
  // Frozen perf counters: the per-core counter path reports a dead-flat
  // interval while the independent MBM path shows the tenant still moving
  // DRAM traffic. Both signals flat is a genuinely stalled or idle interval
  // (a halted vCPU, or a low-IPC workload whose last scheduling quantum
  // overshot the interval boundary) and must be treated as idle, exactly as
  // a fault-free controller would.
  if (tenant.prev_active && mbm_delta > 0 && delta.retired_instructions == 0 &&
      delta.unhalted_cycles == 0.0 && delta.l1_references == 0) {
    return CounterAnomalyKind::kFrozen;
  }
  // Impossible ratios: more misses than references at any level, or IPC far
  // beyond what any core retires.
  if (delta.l1_misses > delta.l1_references || delta.l2_misses > delta.l2_references ||
      delta.llc_misses > delta.llc_references) {
    return CounterAnomalyKind::kGarbage;
  }
  if (delta.unhalted_cycles > 0.0 && delta.Ipc() > config_.counter_sanity_max_ipc) {
    return CounterAnomalyKind::kGarbage;
  }
  return std::nullopt;
}

WorkloadSample DcatController::CollectSample(TenantState& tenant) {
  PerfCounterBlock sum;
  for (uint16_t core : tenant.spec.cores) {
    sum += monitor_->ReadCounters(core);
  }
  const PerfCounterBlock delta = sum - tenant.last_counters;
  // The MBM path is read unconditionally: it is the cross-check the frozen
  // classification relies on, and it stays trustworthy even while the
  // per-core counters are quarantined (separate hardware path).
  uint64_t mbm = 0;
  const PqosStatus mbm_status = monitor_->ReadMemoryBandwidth(tenant.cos, &mbm);
  uint64_t mbm_delta = 0;
  if (mbm_status == PqosStatus::kOk) {
    // A backwards MBM level is a torn read (a truncated value from a
    // partially-written node), not real traffic: keep the last-good
    // snapshot so the next monotonic read yields a sane multi-interval
    // delta.
    if (mbm >= tenant.last_mbm) {
      mbm_delta = mbm - tenant.last_mbm;
      tenant.last_mbm = mbm;
    } else {
      metrics_.counter("faults.mbm_anomalies").Increment();
    }
  } else if (mbm_status == PqosStatus::kIoError) {
    // A failed read is not a value of 0 — keep the snapshot and let the
    // next good read produce the cumulative delta. kUnsupported (backend
    // has no MBM at all) stays silent: nothing is wrong.
    metrics_.counter("faults.monitor_read_errors").Increment();
  }
  const auto anomaly = ClassifyAnomaly(tenant, sum, delta, mbm_delta);
  WorkloadSample sample;
  tenant.quarantined = anomaly.has_value();
  if (!anomaly.has_value()) {
    sample.delta = delta;
    tenant.last_counters = sum;
    tenant.anomaly_streak = 0;
    tenant.prev_active = delta.retired_instructions > 0;
    return sample;
  }
  // Quarantine: the sample stays zeroed and is folded into nothing — not
  // EWMAs, not phase detection, not the performance tables. last_counters
  // is *kept*, so the next clean interval yields a multi-interval delta
  // whose ratios (IPC, miss rates, mem/ins) are still correct.
  ++tenant.anomaly_streak;
  // A frozen counter quarantines only while the MBM cross-check proves the
  // tenant alive; the moment the workload genuinely stops, MBM goes flat
  // and the zero delta classifies as a clean idle interval — so frozen
  // quarantine self-limits without a streak cap.
  if (*anomaly == CounterAnomalyKind::kNonMonotonic && tenant.anomaly_streak >= 3) {
    // A persistent backwards level is a true wrap (the counter lost its
    // high bits for good): re-anchor the snapshot so deltas resume from
    // the new base instead of quarantining forever.
    tenant.last_counters = sum;
  }
  sinks_.OnCounterAnomaly(CounterAnomalyEvent{.tick = tick_,
                                              .tenant = tenant.spec.id,
                                              .kind = *anomaly,
                                              .streak = tenant.anomaly_streak});
  metrics_.counter("faults.counter_anomalies").Increment();
  metrics_.counter(std::string("faults.counter_anomalies.") + CounterAnomalyKindName(*anomaly))
      .Increment();
  return sample;
}

// --- Step 3: Detect Phase Change ---

void DcatController::DetectPhase(TenantState& tenant) {
  tenant.phase_changed = tenant.detector.Update(tenant.sample);
  if (!tenant.phase_changed) {
    return;
  }
  // A new phase invalidates the baseline comparison: Reclaim (§3.4,
  // "Reclaim is applied immediately once there is a phase change").
  tenant.category = Category::kReclaim;
  const double signature = tenant.detector.signature();
  const bool known_phase = tenant.book.Find(signature) != PhaseBook::kNotFound;
  tenant.phase_index = tenant.book.FindOrCreate(signature);
  tenant.has_phase = true;
  tenant.has_last_ipc = false;
  tenant.grow_denied = false;
  tenant.measuring_baseline = false;
  sinks_.OnPhaseChange(PhaseChangeEvent{.tick = tick_,
                                        .tenant = tenant.spec.id,
                                        .phase_index = tenant.phase_index,
                                        .signature = signature,
                                        .known_phase = known_phase});
  metrics_.counter("controller.phase_changes").Increment();
  metrics_.counter("tenant." + std::to_string(tenant.spec.id) + ".phase_changes").Increment();
}

// --- Step 1 (Get Baseline) + performance table maintenance ---

void DcatController::UpdateBaselineAndTable(TenantState& tenant) {
  if (!tenant.has_phase || tenant.phase_changed || tenant.detector.idle()) {
    return;
  }
  PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
  if (tenant.measuring_baseline) {
    // This interval ran at baseline ways: it defines the phase baseline.
    phase.baseline_ipc = tenant.sample.ipc();
    phase.baseline_valid = phase.baseline_ipc > 0.0;
    tenant.measuring_baseline = false;
  }
  if (phase.baseline_valid && phase.baseline_ipc > 0.0) {
    phase.table.Record(tenant.ways, tenant.sample.ipc() / phase.baseline_ipc);
  }
}

// --- Step 4: Categorize Workloads (Fig. 6) ---

void DcatController::Categorize(TenantState& tenant) {
  if (tenant.phase_changed) {
    return;  // stays Reclaim; allocation handles it below
  }
  const WorkloadSample& s = tenant.sample;
  const double ref_rate = s.llc_refs_per_kilo_instruction();
  const bool idle_or_low_llc =
      tenant.detector.idle() || ref_rate <= config_.llc_ref_per_kilo_instruction_thr;
  const double miss_rate = s.llc_miss_rate();
  const double imp = (tenant.has_last_ipc && tenant.last_ipc > 0.0)
                         ? (s.ipc() - tenant.last_ipc) / tenant.last_ipc
                         : 0.0;

  // Guarantee enforcement (§3: dCat must "never impact the performance of
  // the workloads" relative to their reserved allocation). A tenant that
  // donated ways below its contract but turns out to suffer for it — e.g.
  // conflict misses appear only after the shrink — is reclaimed right away.
  if (tenant.has_phase && !tenant.detector.idle() &&
      (tenant.category == Category::kDonor || tenant.category == Category::kKeeper) &&
      tenant.ways < tenant.spec.baseline_ways) {
    const PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
    if (phase.baseline_valid && phase.baseline_ipc > 0.0 &&
        s.ipc() / phase.baseline_ipc < 1.0 - 2.0 * config_.ipc_improvement_thr) {
      tenant.category = Category::kReclaim;
      if (!tenant.detector.idle() && s.ipc() > 0.0) {
        tenant.last_ipc = s.ipc();
        tenant.has_last_ipc = true;
      }
      return;
    }
  }

  switch (tenant.category) {
    case Category::kReclaim: {
      if (tenant.ways < tenant.spec.baseline_ways) {
        // The reclaim never landed (a backend failure rolled the apply
        // back): keep the intent and let allocation retry this interval.
        return;
      }
      // The interval after a reclaim: baseline was (re-)measured by
      // UpdateBaselineAndTable; resume normal operation as Keeper.
      tenant.category = Category::kKeeper;
      [[fallthrough]];
    }
    case Category::kKeeper: {
      if (idle_or_low_llc) {
        // Low LLC traffic usually means the tenant cannot be hurt by
        // donating — but a few workloads (small working sets that straddle
        // the L2) depend on the little LLC they use. If the table proves
        // the minimum allocation costs real performance, keep the ways.
        const auto at_min = CurrentPhase(tenant).table.Get(config_.min_ways);
        if (tenant.detector.idle() || !at_min.has_value() ||
            *at_min >= 1.0 - 2.0 * config_.ipc_improvement_thr) {
          tenant.category = Category::kDonor;
        }
        break;
      }
      if (miss_rate > config_.llc_miss_rate_thr) {
        // Might benefit from growth — unless the performance table already
        // shows saturation. Two sources of evidence: a measured entry for
        // ways+1 (direct), or the slope of the last measured step (a
        // Receiver that just stopped at `ways` leaves a flat step behind
        // and must not immediately re-explore).
        const PerformanceTable& table = CurrentPhase(tenant).table;
        // Greedy exploration lowers the bar for re-exploration to the gain
        // floor (shallow curves stay worth walking); paper-faithful mode
        // requires the full improvement threshold.
        const double bar = config_.greedy_exploration ? config_.exploration_gain_floor
                                                      : config_.ipc_improvement_thr;
        bool profitable = true;
        if (const auto up = table.Improvement(tenant.ways, tenant.ways + 1); up.has_value()) {
          profitable = *up >= bar;
        } else if (const auto last = table.Improvement(tenant.ways - 1, tenant.ways);
                   last.has_value()) {
          profitable = *last >= bar;
        }
        if (profitable) {
          tenant.category = Category::kUnknown;
        }
        break;
      }
      if (miss_rate < config_.donor_shrink_fraction * config_.llc_miss_rate_thr &&
          tenant.ways > config_.min_ways) {
        // High LLC use but (almost) no misses: gradually donate — unless the
        // table already proved the next size down costs real performance
        // (conflict misses can appear only after a shrink, so the first
        // donation is exploratory but is never repeated).
        const PerformanceTable& table = CurrentPhase(tenant).table;
        const auto down = table.Improvement(tenant.ways, tenant.ways - 1);
        if (!down.has_value() || *down > -config_.ipc_improvement_thr) {
          tenant.category = Category::kDonor;
        }
      }
      break;
    }
    case Category::kDonor: {
      if (!idle_or_low_llc && miss_rate > config_.llc_miss_rate_thr) {
        // Misses became non-trivial: stop donating (paper: "until the LLC
        // miss rate becomes non-trivial (hence labeled as Keeper)").
        tenant.category = Category::kKeeper;
      }
      break;
    }
    case Category::kUnknown: {
      if (miss_rate < config_.llc_miss_rate_thr && !idle_or_low_llc) {
        tenant.category = Category::kKeeper;  // current size suffices
        break;
      }
      if (idle_or_low_llc) {
        tenant.category = Category::kDonor;
        break;
      }
      const bool grew = tenant.ways > tenant.prev_interval_ways;
      const uint32_t streaming_ways =
          tenant.spec.baseline_ways * config_.streaming_multiplier;
      // A workload that has accumulated a real gain over its baseline IPC is
      // by definition reusing the cache — never condemn it as Streaming even
      // if individual steps fall under the threshold.
      const PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
      const double cumulative_norm =
          (phase.baseline_valid && phase.baseline_ipc > 0.0) ? s.ipc() / phase.baseline_ipc : 1.0;
      const bool no_reuse_evidence =
          cumulative_norm < 1.0 + config_.exploration_gain_floor;
      if (grew && tenant.has_last_ipc) {
        if (imp >= config_.ipc_improvement_thr) {
          tenant.category = Category::kReceiver;
        } else if (no_reuse_evidence) {
          if (tenant.ways >= streaming_ways) {
            // Grew all the way to the streaming threshold without any
            // accumulated benefit: cyclic access pattern, no reuse.
            tenant.category = Category::kStreaming;
          }
          // Not yet at the threshold: keep exploring to unmask it.
        } else if (!config_.greedy_exploration ||
                   imp < config_.exploration_gain_floor) {
          // The workload demonstrably benefits from cache but this step was
          // below the (effective) bar: stop and keep what it has.
          tenant.category = Category::kKeeper;
        }
        // Greedy exploration with a step in [floor, thr): keep growing.
        break;
      }
      if (!grew && tenant.grow_denied && no_reuse_evidence) {
        // The pool is dry, so the size comparison cannot continue. Condemn
        // only on actual evidence: the last measured growth step was flat
        // (the paper's MLOAD releasing everything "when all available
        // cache are consumed"). A workload whose table still shows a
        // rising slope keeps waiting for capacity instead.
        const PerformanceTable& table = CurrentPhase(tenant).table;
        const auto slope = table.Improvement(tenant.ways - 1, tenant.ways);
        if (slope.has_value() && *slope < config_.ipc_improvement_thr) {
          tenant.category = Category::kStreaming;
        }
      }
      break;
    }
    case Category::kReceiver: {
      if (idle_or_low_llc) {
        tenant.category = Category::kDonor;
        break;
      }
      const bool grew = tenant.ways > tenant.prev_interval_ways;
      if (miss_rate < config_.llc_miss_rate_thr ||
          (grew && tenant.has_last_ipc && imp < config_.ipc_improvement_thr)) {
        tenant.category = Category::kKeeper;  // stop growing (§3.4)
      }
      break;
    }
    case Category::kStreaming: {
      // Only a phase change releases a Streaming workload.
      break;
    }
  }

  if (!tenant.detector.idle() && s.ipc() > 0.0) {
    tenant.last_ipc = s.ipc();
    tenant.has_last_ipc = true;
  }
}

// --- Step 5: Allocate Cache ---

void DcatController::AllocateAndApply() {
  const uint32_t total = cat_->NumWays();
  const size_t n = tenants_.size();
  std::vector<uint32_t> targets(n, 0);
  std::vector<uint32_t> before(n, 0);
  std::vector<std::optional<AllocationReason>> reason(n);
  for (size_t i = 0; i < n; ++i) {
    before[i] = tenants_[i].ways;
  }

  // Snapshot the decision state passes 1-3 mutate: if the apply fails, the
  // allocation never happened and next tick's decisions must start from the
  // pre-apply state (e.g. measuring_baseline armed for ways that were never
  // programmed would corrupt the phase baseline).
  struct SavedDecision {
    Category category;
    bool measuring_baseline;
    bool grow_denied;
  };
  std::vector<SavedDecision> saved(n);
  for (size_t i = 0; i < n; ++i) {
    saved[i] = {tenants_[i].category, tenants_[i].measuring_baseline,
                tenants_[i].grow_denied};
  }

  // Delegate the decision problem to the configured policy (pure function
  // of the inputs snapshot), then copy the verdict back into the tenants.
  const PolicyDecision decision = policy_->Decide(BuildPolicyInputs());
  if (decision.tenants.size() != n) {
    std::fprintf(stderr, "DcatController: policy '%s' returned %zu decisions for %zu tenants\n",
                 policy_->name().c_str(), decision.tenants.size(), n);
    std::abort();
  }
  std::vector<uint32_t> groups(n, 0);
  for (size_t i = 0; i < n; ++i) {
    TenantState& t = tenants_[i];
    const TenantDecision& d = decision.tenants[i];
    t.category = d.category;
    t.measuring_baseline = d.measuring_baseline;
    t.grow_denied = d.grow_denied;
    targets[i] = d.ways;
    groups[i] = d.group;
    reason[i] = d.reason;
  }
  for (uint32_t r = 0; r < decision.reclaims; ++r) {
    metrics_.counter("controller.reclaims").Increment();
  }

  auto used = [&]() {
    if (!clustered_) {
      uint32_t sum = 0;
      for (uint32_t w : targets) {
        sum += w;
      }
      return sum;
    }
    // Shared COSes: each distinct group's ways count once.
    uint32_t sum = 0;
    std::vector<uint32_t> seen;
    for (size_t i = 0; i < n; ++i) {
      if (std::find(seen.begin(), seen.end(), groups[i]) == seen.end()) {
        seen.push_back(groups[i]);
        sum += targets[i];
      }
    }
    return sum;
  };

  JournalDecision(targets, groups, /*degraded=*/false);
  const bool applied =
      clustered_ ? ApplyMasksClustered(targets, groups) : ApplyMasks(targets);
  if (!applied) {
    // The allocation never took effect: roll the decision state back so the
    // next interval re-derives it from allocations that actually ran, and
    // count the failure toward graceful degradation.
    for (size_t i = 0; i < n; ++i) {
      tenants_[i].category = saved[i].category;
      tenants_[i].measuring_baseline = saved[i].measuring_baseline;
      tenants_[i].grow_denied = saved[i].grow_denied;
      if (reason[i] == AllocationReason::kReclaim) {
        // A reclaim that failed to program must not be forgotten: the
        // phase-change edge that triggered it was already consumed by the
        // detector, so restoring the pre-tick category would strand the
        // tenant below its contracted baseline. Park it in Reclaim and
        // retry next interval.
        tenants_[i].category = Category::kReclaim;
      }
    }
    ++consecutive_apply_failures_;
    metrics_.counter("faults.apply_failures").Increment();
    if (consecutive_apply_failures_ >= config_.degraded_after_failures) {
      EnterDegraded();
    }
    ArmRetryBackoff();
    return;
  }
  NoteApplySuccess();
  metrics_.gauge("controller.pool_ways").Set(static_cast<double>(total - used()));

  // Publish the decisions: every change carries its reason; a denied grow
  // is published even though the allocation itself did not move.
  for (size_t i = 0; i < n; ++i) {
    const TenantState& t = tenants_[i];
    if (targets[i] != before[i]) {
      const AllocationReason r = reason[i].value_or(
          targets[i] > before[i] ? AllocationReason::kGrowFromPool : AllocationReason::kDonate);
      sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                          .tenant = t.spec.id,
                                          .reason = r,
                                          .from_ways = before[i],
                                          .to_ways = targets[i]});
      metrics_.counter(std::string("controller.alloc.") + AllocationReasonName(r)).Increment();
    }
    if (t.grow_denied) {
      sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                          .tenant = t.spec.id,
                                          .reason = AllocationReason::kGrowDenied,
                                          .from_ways = before[i],
                                          .to_ways = targets[i]});
      metrics_.counter("controller.alloc.grow-denied").Increment();
    }
  }
}

PolicyInputs DcatController::BuildPolicyInputs() const {
  PolicyInputs inputs;
  inputs.total_ways = cat_->NumWays();
  inputs.num_cos = cat_->NumCos();
  inputs.config = &config_;
  inputs.tenants.reserve(tenants_.size());
  for (const TenantState& t : tenants_) {
    PolicyTenant pt;
    pt.id = t.spec.id;
    pt.category = t.category;
    pt.ways = t.ways;
    pt.baseline_ways = t.spec.baseline_ways;
    pt.group = t.group;
    pt.quarantined = t.quarantined;
    pt.idle = t.detector.idle();
    pt.phase_signature = t.detector.signature();
    pt.llc_refs_per_kilo_instruction = t.sample.llc_refs_per_kilo_instruction();
    pt.llc_miss_rate = t.sample.llc_miss_rate();
    pt.has_phase = t.has_phase;
    pt.measuring_baseline = t.measuring_baseline;
    if (t.has_phase) {
      const PhaseBook::PhaseRecord& phase = CurrentPhase(t);
      pt.baseline_valid = phase.baseline_valid;
      pt.table = &phase.table;
    }
    inputs.tenants.push_back(pt);
  }
  return inputs;
}

// --- fault-tolerant write primitives ---

bool DcatController::WriteMaskWithRetry(uint8_t cos, TenantId tenant, uint32_t mask) {
  uint32_t attempts = 0;
  bool ok = false;
  for (uint32_t attempt = 0; attempt <= config_.max_write_retries; ++attempt) {
    ++attempts;
    if (cat_->SetCosMask(cos, mask) != PqosStatus::kOk) {
      metrics_.counter("faults.write_errors").Increment();
      continue;
    }
    // Verify-after-write: a backend may acknowledge and still not program
    // the mask (silent drop); only the readback is believed.
    if (cat_->GetCosMask(cos) != mask) {
      metrics_.counter("faults.silent_drops_detected").Increment();
      continue;
    }
    ok = true;
    break;
  }
  if (attempts > 1 || !ok) {
    sinks_.OnBackendFault(BackendFaultEvent{.tick = tick_,
                                            .tenant = tenant,
                                            .op = BackendOp::kSetCosMask,
                                            .attempts = attempts,
                                            .recovered = ok});
    metrics_.counter(ok ? "faults.write_recovered" : "faults.write_failures").Increment();
  }
  return ok;
}

bool DcatController::WriteMaskBatchWithRetry(std::vector<BatchMaskWrite>& writes) {
  if (writes.empty()) {
    return true;
  }
  const uint32_t max_attempts = config_.max_write_retries + 1;
  while (true) {
    // Re-batch everything that has not landed and still has attempts left.
    std::vector<CosMaskUpdate> updates;
    std::vector<size_t> index;
    for (size_t i = 0; i < writes.size(); ++i) {
      if (!writes[i].done && writes[i].attempts < max_attempts) {
        updates.push_back(CosMaskUpdate{writes[i].cos, writes[i].mask});
        index.push_back(i);
      }
    }
    if (updates.empty()) {
      break;
    }
    size_t applied = 0;
    const PqosStatus status = cat_->ApplyMaskBatch(updates, &applied);
    // Verify-after-write for the acknowledged prefix: a backend may accept
    // the batch and still silently drop elements; only readback is believed.
    for (size_t j = 0; j < applied && j < updates.size(); ++j) {
      BatchMaskWrite& w = writes[index[j]];
      ++w.attempts;
      if (cat_->GetCosMask(w.cos) == w.mask) {
        w.done = true;
      } else {
        metrics_.counter("faults.silent_drops_detected").Increment();
      }
    }
    if (status != PqosStatus::kOk && applied < updates.size()) {
      // The failing element consumed an attempt; elements behind it were
      // never attempted and keep their budget for the next round.
      ++writes[index[applied]].attempts;
      metrics_.counter("faults.write_errors").Increment();
    } else if (status == PqosStatus::kOk && applied < updates.size()) {
      // Defensive: success must mean the whole batch was acknowledged.
      break;
    }
    bool exhausted = false;
    for (const BatchMaskWrite& w : writes) {
      if (!w.done && w.attempts >= max_attempts) {
        exhausted = true;
        break;
      }
    }
    if (exhausted) {
      break;
    }
  }
  // Same accounting as the per-COS path, reported in element order.
  bool all_ok = true;
  for (const BatchMaskWrite& w : writes) {
    if (!w.done) {
      all_ok = false;
    }
    if (w.attempts > 1 || !w.done) {
      sinks_.OnBackendFault(BackendFaultEvent{.tick = tick_,
                                              .tenant = w.tenant,
                                              .op = BackendOp::kSetCosMask,
                                              .attempts = w.attempts,
                                              .recovered = w.done});
      metrics_.counter(w.done ? "faults.write_recovered" : "faults.write_failures").Increment();
    }
  }
  return all_ok;
}

bool DcatController::AssociateWithRetry(uint16_t core, uint8_t cos, TenantId tenant) {
  uint32_t attempts = 0;
  bool ok = false;
  for (uint32_t attempt = 0; attempt <= config_.max_write_retries; ++attempt) {
    ++attempts;
    if (cat_->AssociateCore(core, cos) != PqosStatus::kOk) {
      metrics_.counter("faults.write_errors").Increment();
      continue;
    }
    if (cat_->GetCoreAssociation(core) != cos) {
      metrics_.counter("faults.silent_drops_detected").Increment();
      continue;
    }
    ok = true;
    break;
  }
  if (attempts > 1 || !ok) {
    sinks_.OnBackendFault(BackendFaultEvent{.tick = tick_,
                                            .tenant = tenant,
                                            .op = BackendOp::kAssociateCore,
                                            .attempts = attempts,
                                            .recovered = ok});
    metrics_.counter(ok ? "faults.write_recovered" : "faults.write_failures").Increment();
  }
  return ok;
}

bool DcatController::ApplyMasks(const std::vector<uint32_t>& targets) {
  const auto masks = LayoutMasks(targets, cat_->NumWays());
  if (!masks.has_value()) {
    // Targets come from this controller's own allocator under invariants it
    // enforces (Σ targets <= ways, every target >= min_ways >= 1); an
    // inexpressible layout is a programmer error, not a backend fault.
    std::fprintf(stderr, "DcatController: allocator produced an inexpressible layout\n");
    std::abort();
  }
  // Phase 1: program every changed mask; remember what landed so a partial
  // failure can be rolled back (leaving overlapping masks across tenants
  // until the next reconcile would break isolation, not just optimality).
  if (config_.batch_mask_apply) {
    std::vector<BatchMaskWrite> writes;
    std::vector<size_t> tenant_index;
    for (size_t i = 0; i < tenants_.size(); ++i) {
      const TenantState& t = tenants_[i];
      if (t.mask == (*masks)[i]) {
        continue;  // already acknowledged at this value
      }
      writes.push_back(BatchMaskWrite{t.cos, t.spec.id, (*masks)[i], 0, false});
      tenant_index.push_back(i);
    }
    if (!WriteMaskBatchWithRetry(writes)) {
      for (size_t j = 0; j < writes.size(); ++j) {
        const TenantState& t = tenants_[tenant_index[j]];
        if (writes[j].done && t.mask != 0) {
          // Best effort: an unrecoverable rollback leaves drift that the
          // per-tick reconciliation keeps repairing.
          WriteMaskWithRetry(t.cos, t.spec.id, t.mask);
        }
      }
      return false;
    }
  } else {
    std::vector<size_t> written;
    bool failed = false;
    for (size_t i = 0; i < tenants_.size(); ++i) {
      TenantState& t = tenants_[i];
      if (t.mask == (*masks)[i]) {
        continue;  // already acknowledged at this value
      }
      if (!WriteMaskWithRetry(t.cos, t.spec.id, (*masks)[i])) {
        failed = true;
        break;
      }
      written.push_back(i);
    }
    if (failed) {
      for (size_t i : written) {
        const TenantState& t = tenants_[i];
        if (t.mask != 0) {
          // Best effort: an unrecoverable rollback leaves drift that the
          // per-tick reconciliation keeps repairing.
          WriteMaskWithRetry(t.cos, t.spec.id, t.mask);
        }
      }
      return false;
    }
  }
  // Phase 2: the backend acknowledged everything — commit the bookkeeping.
  for (size_t i = 0; i < tenants_.size(); ++i) {
    tenants_[i].ways = targets[i];
    tenants_[i].mask = (*masks)[i];
  }
  return true;
}

bool DcatController::ApplyMasksClustered(const std::vector<uint32_t>& targets,
                                         const std::vector<uint32_t>& groups) {
  const size_t n = tenants_.size();
  // Normalize groups by first occurrence: group order -> COS 1..G. The
  // mapping is recomputed every apply, so a policy that regroups tenants
  // mostly reshuffles existing masks rather than programming fresh COSes.
  std::vector<uint32_t> order;
  std::vector<size_t> gidx(n, 0);
  std::vector<uint32_t> group_ways;
  std::vector<TenantId> group_owner;
  for (size_t i = 0; i < n; ++i) {
    const auto it = std::find(order.begin(), order.end(), groups[i]);
    if (it == order.end()) {
      gidx[i] = order.size();
      order.push_back(groups[i]);
      group_ways.push_back(targets[i]);
      group_owner.push_back(tenants_[i].spec.id);
    } else {
      gidx[i] = static_cast<size_t>(it - order.begin());
      if (targets[i] != group_ways[gidx[i]]) {
        // The Policy contract requires equal ways within a group; unequal
        // targets would make t.ways lie about the mask the tenant runs on.
        std::fprintf(stderr, "DcatController: clustered targets disagree within group %u\n",
                     groups[i]);
        std::abort();
      }
    }
  }
  const size_t num_groups = order.size();
  if (num_groups + 1 > cat_->NumCos()) {
    std::fprintf(stderr, "DcatController: policy used %zu groups with %u COSes\n", num_groups,
                 cat_->NumCos());
    std::abort();
  }
  const auto masks = LayoutMasks(group_ways, cat_->NumWays());
  if (!masks.has_value()) {
    std::fprintf(stderr, "DcatController: allocator produced an inexpressible layout\n");
    std::abort();
  }
  // Phase 1: program every changed group mask (COS = group index + 1),
  // remembering what landed for rollback on partial failure.
  if (config_.batch_mask_apply) {
    std::vector<BatchMaskWrite> writes;
    std::vector<size_t> group_index;
    for (size_t g = 0; g < num_groups; ++g) {
      const uint8_t cos = static_cast<uint8_t>(g + 1);
      if (cos_acked_mask_[cos] == (*masks)[g]) {
        continue;  // already acknowledged at this value
      }
      writes.push_back(BatchMaskWrite{cos, group_owner[g], (*masks)[g], 0, false});
      group_index.push_back(g);
    }
    if (!WriteMaskBatchWithRetry(writes)) {
      for (size_t j = 0; j < writes.size(); ++j) {
        const size_t g = group_index[j];
        const uint8_t cos = static_cast<uint8_t>(g + 1);
        if (writes[j].done && cos_acked_mask_[cos] != 0) {
          WriteMaskWithRetry(cos, group_owner[g], cos_acked_mask_[cos]);
        }
      }
      return false;
    }
  } else {
    std::vector<size_t> written;
    bool failed = false;
    for (size_t g = 0; g < num_groups; ++g) {
      const uint8_t cos = static_cast<uint8_t>(g + 1);
      if (cos_acked_mask_[cos] == (*masks)[g]) {
        continue;  // already acknowledged at this value
      }
      if (!WriteMaskWithRetry(cos, group_owner[g], (*masks)[g])) {
        failed = true;
        break;
      }
      written.push_back(g);
    }
    if (failed) {
      for (size_t g : written) {
        const uint8_t cos = static_cast<uint8_t>(g + 1);
        if (cos_acked_mask_[cos] != 0) {
          WriteMaskWithRetry(cos, group_owner[g], cos_acked_mask_[cos]);
        }
      }
      return false;
    }
  }
  // Phase 2: commit. COSes beyond the live group count keep their last
  // programmed mask on the backend, but the acked record is cleared so a
  // future group landing there is programmed fresh, not skipped as current.
  for (size_t g = 0; g < num_groups; ++g) {
    cos_acked_mask_[g + 1] = (*masks)[g];
  }
  for (size_t cos = num_groups + 1; cos < cos_acked_mask_.size(); ++cos) {
    cos_acked_mask_[cos] = 0;
  }
  for (size_t i = 0; i < n; ++i) {
    TenantState& t = tenants_[i];
    t.ways = targets[i];
    t.mask = (*masks)[gidx[i]];
    t.group = groups[i];
    const uint8_t cos = static_cast<uint8_t>(gidx[i] + 1);
    if (t.cos != cos) {
      // Cores follow their tenant's group. An association failure here is
      // tolerated — the masks already committed, and the per-tick
      // reconciliation re-programs stragglers against t.cos.
      for (uint16_t core : t.spec.cores) {
        AssociateWithRetry(core, cos, t.spec.id);
      }
      t.cos = cos;
    }
  }
  return true;
}

void DcatController::ReconcileBackend() {
  // Keep retrying core releases that failed during tenant removal. A core
  // re-admitted to a live tenant, or already back in COS 0, is done.
  for (auto it = orphaned_cores_.begin(); it != orphaned_cores_.end();) {
    const uint16_t core = *it;
    const bool owned_by_live_tenant =
        std::any_of(tenants_.begin(), tenants_.end(), [core](const TenantState& t) {
          return std::find(t.spec.cores.begin(), t.spec.cores.end(), core) !=
                 t.spec.cores.end();
        });
    if (owned_by_live_tenant || cat_->GetCoreAssociation(core) == 0 ||
        AssociateWithRetry(core, 0, 0)) {
      it = orphaned_cores_.erase(it);
    } else {
      ++it;
    }
  }
  // Audit the backend against the acknowledged state: silent drops and
  // external interference surface here as drift, and get re-programmed.
  for (TenantState& t : tenants_) {
    if (t.mask != 0) {
      const uint32_t actual = cat_->GetCosMask(t.cos);
      if (actual != t.mask) {
        const bool repaired = WriteMaskWithRetry(t.cos, t.spec.id, t.mask);
        sinks_.OnMaskDrift(MaskDriftEvent{.tick = tick_,
                                          .tenant = t.spec.id,
                                          .cos = t.cos,
                                          .expected = t.mask,
                                          .actual = actual,
                                          .association = false,
                                          .core = 0,
                                          .repaired = repaired});
        metrics_
            .counter(repaired ? "faults.mask_drift_repaired" : "faults.mask_drift_unrepaired")
            .Increment();
      }
    }
    for (uint16_t core : t.spec.cores) {
      const uint8_t actual_cos = cat_->GetCoreAssociation(core);
      if (actual_cos != t.cos) {
        const bool repaired = AssociateWithRetry(core, t.cos, t.spec.id);
        sinks_.OnMaskDrift(MaskDriftEvent{.tick = tick_,
                                          .tenant = t.spec.id,
                                          .cos = t.cos,
                                          .expected = t.cos,
                                          .actual = actual_cos,
                                          .association = true,
                                          .core = core,
                                          .repaired = repaired});
        metrics_
            .counter(repaired ? "faults.mask_drift_repaired" : "faults.mask_drift_unrepaired")
            .Increment();
      }
    }
  }
}

// --- graceful degradation (the paper's safety contract as a fallback) ---

void DcatController::EnterDegraded() {
  mode_ = Mode::kDegraded;
  degraded_clean_ticks_ = 0;
  for (TenantState& t : tenants_) {
    // Degraded mode pins everyone at their contracted baseline — exactly a
    // reclaim of the static partition. Dynamic decision state is disarmed.
    t.category = Category::kReclaim;
    t.measuring_baseline = false;
    t.grow_denied = false;
  }
  sinks_.OnModeChange(ModeChangeEvent{.tick = tick_,
                                      .degraded = true,
                                      .consecutive_failures = consecutive_apply_failures_});
  metrics_.counter("faults.degraded_entries").Increment();
  metrics_.gauge("controller.degraded_mode").Set(1.0);
}

void DcatController::ExitDegraded() {
  mode_ = Mode::kDynamic;
  consecutive_apply_failures_ = 0;
  for (TenantState& t : tenants_) {
    // Re-enter dynamic mode as a Keeper measuring a fresh baseline: the
    // tenant has been running at baseline ways throughout degraded mode, so
    // the next interval's sample is a valid baseline measurement. (Reclaim
    // would be flipped to Keeper by the categorizer before allocation saw
    // it, so it is not a usable re-entry state.)
    t.category = Category::kKeeper;
    t.measuring_baseline = true;
    t.has_last_ipc = false;
    t.grow_denied = false;
  }
  sinks_.OnModeChange(
      ModeChangeEvent{.tick = tick_, .degraded = false, .consecutive_failures = 0});
  metrics_.counter("faults.degraded_exits").Increment();
  metrics_.gauge("controller.degraded_mode").Set(0.0);
}

void DcatController::DegradedTick() {
  for (TenantState& t : tenants_) {
    t.category_at_tick_start = t.category;
    t.sample = CollectSample(t);
    t.phase_changed = false;
    t.prev_interval_ways = t.ways;
  }
  const size_t n = tenants_.size();
  std::vector<uint32_t> before(n, 0);
  std::vector<uint32_t> targets(n, 0);
  for (size_t i = 0; i < n; ++i) {
    before[i] = tenants_[i].ways;
    targets[i] = std::max(tenants_[i].spec.baseline_ways, config_.min_ways);
  }
  std::vector<uint32_t> groups(n, 0);
  if (clustered_) {
    // Keep the current grouping but lift every group to its most demanding
    // member's baseline — the static-partition guarantee at group grain.
    for (size_t i = 0; i < n; ++i) {
      groups[i] = tenants_[i].group;
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (groups[j] == groups[i]) {
          targets[i] = std::max(targets[i], targets[j]);
        }
      }
    }
  }
  // Σ baselines <= total ways (admission control), so this always fits.
  JournalDecision(targets, groups, /*degraded=*/true);
  const bool applied =
      clustered_ ? ApplyMasksClustered(targets, groups) : ApplyMasks(targets);
  if (applied) {
    NoteApplySuccess();
    for (size_t i = 0; i < n; ++i) {
      if (targets[i] != before[i]) {
        sinks_.OnAllocation(AllocationEvent{.tick = tick_,
                                            .tenant = tenants_[i].spec.id,
                                            .reason = AllocationReason::kDegradedBaseline,
                                            .from_ways = before[i],
                                            .to_ways = targets[i]});
        metrics_.counter("controller.alloc.degraded-baseline").Increment();
      }
    }
    ++degraded_clean_ticks_;
    if (degraded_clean_ticks_ >= config_.degraded_recovery_ticks) {
      ExitDegraded();
    }
  } else {
    ++consecutive_apply_failures_;
    metrics_.counter("faults.apply_failures").Increment();
    degraded_clean_ticks_ = 0;
    ArmRetryBackoff();
  }
  EmitTickEventsAndMetrics();
}

void DcatController::Tick() {
  ++tick_;
  ReconcileBackend();
  if (next_apply_tick_ != 0 && tick_ < next_apply_tick_) {
    // Backoff window after a failed apply: keep sampling (cumulative
    // counters make the eventual multi-interval delta exact) and keep the
    // telemetry cadence, but leave every decision input frozen and do not
    // touch the backend beyond reconciliation.
    SkipBackoffTick();
    return;
  }
  if (mode_ == Mode::kDegraded) {
    DegradedTick();
    return;
  }
  for (TenantState& t : tenants_) {
    t.category_at_tick_start = t.category;
    t.sample = CollectSample(t);
    if (t.quarantined) {
      // The interval's telemetry is untrustworthy: freeze every decision
      // input (phase detection, baselines, tables, categories) this tick.
      t.phase_changed = false;
    } else {
      DetectPhase(t);
      UpdateBaselineAndTable(t);
      Categorize(t);
    }
    t.prev_interval_ways = t.ways;
  }
  const auto alloc_start = std::chrono::steady_clock::now();
  AllocateAndApply();
  const double alloc_us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - alloc_start)
          .count();
  EmitTickEventsAndMetrics();
  metrics_.histogram("controller.allocate_latency_us", {1.0, 10.0, 100.0, 1000.0, 10000.0})
      .Observe(alloc_us);
}

// --- exponential backoff after failed applies ---

void DcatController::ArmRetryBackoff() {
  const uint32_t failures = std::max<uint32_t>(consecutive_apply_failures_, 1);
  const uint32_t shift = std::min<uint32_t>(failures - 1, 16);
  const uint64_t raw =
      static_cast<uint64_t>(std::max<uint32_t>(config_.retry_base_ticks, 1)) << shift;
  // Deterministic jitter in [0, raw): keyed on (tick, failure count) so a
  // restarted controller derives the same schedule as one that never died,
  // while distinct failure bursts desynchronize across a fleet.
  uint64_t key = tick_ ^ (static_cast<uint64_t>(failures) * 0x9e3779b97f4a7c15ULL);
  const uint64_t jitter = SplitMix64(key) % raw;
  const uint64_t delay =
      std::min<uint64_t>(raw + jitter, std::max<uint32_t>(config_.retry_max_ticks, 1));
  next_apply_tick_ = tick_ + std::max<uint64_t>(delay, 1);
  metrics_.gauge("faults.retry_backoff_ticks").Set(static_cast<double>(delay));
}

void DcatController::SkipBackoffTick() {
  // Sampling continues (cumulative counters keep the eventual deltas
  // exact) but every decision input stays frozen: no phase detection, no
  // table updates, no categorization, no apply. Deferred phase edges are
  // still caught — the detector compares against the live signature once
  // the window closes.
  for (TenantState& t : tenants_) {
    t.category_at_tick_start = t.category;
    t.sample = CollectSample(t);
    t.phase_changed = false;
    t.prev_interval_ways = t.ways;
  }
  // Journal a no-change intent: a crash inside the window replays into the
  // same frozen allocation.
  const size_t n = tenants_.size();
  std::vector<uint32_t> targets(n, 0);
  std::vector<uint32_t> groups(n, 0);
  for (size_t i = 0; i < n; ++i) {
    targets[i] = tenants_[i].ways;
    groups[i] = tenants_[i].group;
  }
  JournalDecision(targets, groups, mode_ == Mode::kDegraded);
  metrics_.counter("faults.apply_backoff_skips").Increment();
  EmitTickEventsAndMetrics();
}

// --- crash recovery: journaling, state image, restart reconciliation ---

void DcatController::JournalDecision(const std::vector<uint32_t>& targets,
                                     const std::vector<uint32_t>& groups, bool degraded) {
  if (journal_ == nullptr) {
    return;
  }
  DecisionIntent intent;
  intent.degraded = degraded;
  intent.targets = targets;
  if (clustered_) {
    intent.groups = groups;
  }
  journal_->OnDecision(ExportState(), intent);
}

void DcatController::JournalContractChange() {
  if (journal_ != nullptr) {
    journal_->OnContractChange(ExportState());
  }
}

void DcatController::NoteApplySuccess() {
  consecutive_apply_failures_ = 0;
  next_apply_tick_ = 0;
  if (!recovery_pending_) {
    return;
  }
  recovery_pending_ = false;
  const uint64_t took = tick_ >= recovery_start_tick_ ? tick_ - recovery_start_tick_ : 0;
  sinks_.OnRecovery(RecoveryEvent{.tick = tick_,
                                  .adopted = recovery_stats_.adopted,
                                  .redone = recovery_stats_.redone,
                                  .divergent = recovery_stats_.divergent,
                                  .recovery_ticks = took,
                                  .converged = true});
  metrics_.histogram("controller.recovery_ticks", {0.0, 1.0, 2.0, 4.0, 8.0, 16.0})
      .Observe(static_cast<double>(took));
}

ControllerPersistentState DcatController::ExportState() const {
  ControllerPersistentState state;
  state.tick = tick_;
  state.policy = policy_->name();
  state.degraded = mode_ == Mode::kDegraded;
  state.consecutive_apply_failures = consecutive_apply_failures_;
  state.degraded_clean_ticks = degraded_clean_ticks_;
  state.next_apply_tick = next_apply_tick_;
  state.orphaned_cores = orphaned_cores_;
  state.cos_acked_mask = cos_acked_mask_;
  state.next_group_id = next_group_id_;
  state.tenants.reserve(tenants_.size());
  for (const TenantState& t : tenants_) {
    PersistentTenant p;
    p.spec = t.spec;
    p.cos = t.cos;
    p.group = t.group;
    p.category = t.category;
    p.ways = t.ways;
    p.mask = t.mask;
    p.last_counters = t.last_counters;
    const PhaseDetector::State d = t.detector.Export();
    p.detector_has_signature = d.has_signature;
    p.detector_idle = d.idle;
    p.detector_signature = d.signature;
    p.phases.reserve(t.book.size());
    for (size_t i = 0; i < t.book.size(); ++i) {
      const PhaseBook::PhaseRecord& rec = t.book.record(i);
      PersistentPhaseRecord pr;
      pr.signature = rec.signature;
      pr.baseline_ipc = rec.baseline_ipc;
      pr.baseline_valid = rec.baseline_valid;
      pr.table = rec.table.Entries();
      p.phases.push_back(std::move(pr));
    }
    p.phase_index = t.phase_index;
    p.has_phase = t.has_phase;
    p.measuring_baseline = t.measuring_baseline;
    p.last_ipc = t.last_ipc;
    p.has_last_ipc = t.has_last_ipc;
    p.prev_interval_ways = t.prev_interval_ways;
    p.grow_denied = t.grow_denied;
    p.anomaly_streak = t.anomaly_streak;
    p.prev_active = t.prev_active;
    p.last_mbm = t.last_mbm;
    state.tenants.push_back(std::move(p));
  }
  return state;
}

void DcatController::ImportState(const ControllerPersistentState& state) {
  tick_ = state.tick;
  mode_ = state.degraded ? Mode::kDegraded : Mode::kDynamic;
  consecutive_apply_failures_ = state.consecutive_apply_failures;
  degraded_clean_ticks_ = state.degraded_clean_ticks;
  next_apply_tick_ = state.next_apply_tick;
  orphaned_cores_ = state.orphaned_cores;
  next_group_id_ = state.next_group_id;
  if (clustered_) {
    // A journal written by a classic-mode controller carries no acked
    // masks; size the vector for the backend either way.
    cos_acked_mask_ = state.cos_acked_mask;
    cos_acked_mask_.resize(cat_->NumCos(), 0);
  }
  tenants_.clear();
  decision_log_.Clear();
  for (const PersistentTenant& p : state.tenants) {
    TenantState t{.spec = p.spec,
                  .cos = p.cos,
                  .group = p.group,
                  .category = p.category,
                  .ways = p.ways,
                  .detector = PhaseDetector(config_),
                  .book = PhaseBook(config_.phase_change_thr)};
    t.mask = p.mask;
    t.last_counters = p.last_counters;
    t.detector.Restore(PhaseDetector::State{.has_signature = p.detector_has_signature,
                                            .idle = p.detector_idle,
                                            .signature = p.detector_signature});
    for (const PersistentPhaseRecord& pr : p.phases) {
      PhaseBook::PhaseRecord rec;
      rec.signature = pr.signature;
      rec.baseline_ipc = pr.baseline_ipc;
      rec.baseline_valid = pr.baseline_valid;
      rec.table.RestoreEntries(pr.table);
      t.book.AppendRecord(std::move(rec));
    }
    t.phase_index = static_cast<size_t>(p.phase_index);
    // A malformed phase index (bit rot the CRC did not catch, or a record
    // from a newer schema) must not leave a dangling reference.
    t.has_phase = p.has_phase && t.phase_index < t.book.size();
    t.measuring_baseline = p.measuring_baseline;
    t.last_ipc = p.last_ipc;
    t.has_last_ipc = p.has_last_ipc;
    t.prev_interval_ways = p.prev_interval_ways;
    t.grow_denied = p.grow_denied;
    t.anomaly_streak = p.anomaly_streak;
    t.prev_active = p.prev_active;
    t.last_mbm = p.last_mbm;
    t.category_at_tick_start = p.category;
    tenants_.push_back(std::move(t));
  }
  metrics_.gauge("controller.degraded_mode").Set(state.degraded ? 1.0 : 0.0);
}

DcatController::RecoveryApplyStats DcatController::CompleteRecovery(
    const DecisionIntent* intent) {
  RecoveryApplyStats stats;
  const size_t n = tenants_.size();
  bool write_failures = false;

  // Roll the interrupted intent forward COS by COS. A corrupt or
  // shape-mismatched intent demotes recovery to the at-rest audit below —
  // never an abort: the journal is input, not an invariant.
  bool rolled_forward = false;
  const bool intent_shape_ok = intent != nullptr && n > 0 && intent->targets.size() == n &&
                               (!clustered_ || intent->groups.size() == n);
  if (intent_shape_ok && !clustered_) {
    const auto masks = LayoutMasks(intent->targets, cat_->NumWays());
    if (masks.has_value()) {
      rolled_forward = true;
      for (size_t i = 0; i < n; ++i) {
        TenantState& t = tenants_[i];
        const uint32_t want = (*masks)[i];
        const uint32_t hw = cat_->GetCosMask(t.cos);
        if (hw == want) {
          // The crash fell after this COS's write (or the mask was not
          // changing): adopt the hardware as-is.
          t.ways = intent->targets[i];
          t.mask = want;
          ++stats.adopted;
        } else if (t.mask == 0 || hw == t.mask) {
          // Still at the pre-apply mask: the crash fell before this COS's
          // write. Finish the interrupted transaction.
          if (WriteMaskWithRetry(t.cos, t.spec.id, want)) {
            t.ways = intent->targets[i];
            t.mask = want;
            ++stats.redone;
          } else {
            t.mask = 0;
            t.category = Category::kReclaim;
            write_failures = true;
          }
        } else {
          // Hardware matches neither image: external interference while the
          // controller was down. Adopt nothing; the reclaim machinery
          // re-establishes the contracted allocation.
          t.mask = 0;
          t.category = Category::kReclaim;
          ++stats.divergent;
        }
      }
    }
  } else if (intent_shape_ok && clustered_) {
    // Group normalization identical to ApplyMasksClustered, minus the
    // aborts (journaled input is validated, not trusted).
    std::vector<uint32_t> order;
    std::vector<size_t> gidx(n, 0);
    std::vector<uint32_t> group_ways;
    std::vector<TenantId> group_owner;
    bool coherent = true;
    for (size_t i = 0; i < n && coherent; ++i) {
      const auto it = std::find(order.begin(), order.end(), intent->groups[i]);
      if (it == order.end()) {
        gidx[i] = order.size();
        order.push_back(intent->groups[i]);
        group_ways.push_back(intent->targets[i]);
        group_owner.push_back(tenants_[i].spec.id);
      } else {
        gidx[i] = static_cast<size_t>(it - order.begin());
        coherent = intent->targets[i] == group_ways[gidx[i]];
      }
    }
    const size_t num_groups = order.size();
    if (num_groups + 1 > cat_->NumCos()) {
      coherent = false;
    }
    std::optional<std::vector<uint32_t>> masks;
    if (coherent) {
      masks = LayoutMasks(group_ways, cat_->NumWays());
    }
    if (coherent && masks.has_value()) {
      rolled_forward = true;
      std::vector<bool> ok(num_groups, false);
      for (size_t g = 0; g < num_groups; ++g) {
        const uint8_t cos = static_cast<uint8_t>(g + 1);
        const uint32_t want = (*masks)[g];
        const uint32_t hw = cat_->GetCosMask(cos);
        const uint32_t acked = cos < cos_acked_mask_.size() ? cos_acked_mask_[cos] : 0;
        if (hw == want) {
          ok[g] = true;
          ++stats.adopted;
        } else if (acked == 0 || hw == acked) {
          if (WriteMaskWithRetry(cos, group_owner[g], want)) {
            ok[g] = true;
            ++stats.redone;
          } else {
            write_failures = true;
          }
        } else {
          ++stats.divergent;
        }
      }
      // Commit: COS/group assignment follows the intent for every tenant
      // (bookkeeping and reconciliation must agree on who lives where);
      // ways and masks commit only for groups whose mask landed — the rest
      // park in Reclaim with a cleared acked mask so the next apply
      // programs them fresh.
      for (size_t g = 0; g < num_groups; ++g) {
        cos_acked_mask_[g + 1] = ok[g] ? (*masks)[g] : 0;
      }
      for (size_t cos = num_groups + 1; cos < cos_acked_mask_.size(); ++cos) {
        cos_acked_mask_[cos] = 0;
      }
      for (size_t i = 0; i < n; ++i) {
        TenantState& t = tenants_[i];
        t.group = intent->groups[i];
        t.cos = static_cast<uint8_t>(gidx[i] + 1);
        if (ok[gidx[i]]) {
          t.ways = intent->targets[i];
          t.mask = (*masks)[gidx[i]];
        } else {
          t.mask = 0;
          t.category = Category::kReclaim;
        }
      }
    }
  }
  if (!rolled_forward) {
    // At-rest image (snapshot record, empty journal tail, or an unusable
    // intent): audit the hardware against the adopted bookkeeping.
    if (!clustered_) {
      for (TenantState& t : tenants_) {
        if (t.mask == 0) {
          continue;
        }
        if (cat_->GetCosMask(t.cos) == t.mask) {
          ++stats.adopted;
        } else {
          t.mask = 0;
          t.category = Category::kReclaim;
          ++stats.divergent;
        }
      }
    } else {
      for (size_t cos = 1; cos < cos_acked_mask_.size(); ++cos) {
        if (cos_acked_mask_[cos] == 0) {
          continue;
        }
        if (cat_->GetCosMask(static_cast<uint8_t>(cos)) == cos_acked_mask_[cos]) {
          ++stats.adopted;
          continue;
        }
        cos_acked_mask_[cos] = 0;
        ++stats.divergent;
        for (TenantState& t : tenants_) {
          if (t.cos == cos) {
            t.mask = 0;
            t.category = Category::kReclaim;
          }
        }
      }
    }
  }
  // Core associations are idempotent: re-assert every tenant's cores now.
  // Stragglers (and orphaned releases) stay on the per-tick
  // reconciliation's retry list.
  for (TenantState& t : tenants_) {
    for (uint16_t core : t.spec.cores) {
      if (cat_->GetCoreAssociation(core) != t.cos &&
          !AssociateWithRetry(core, t.cos, t.spec.id)) {
        write_failures = true;
      }
    }
  }
  if (write_failures) {
    ++consecutive_apply_failures_;
    metrics_.counter("faults.apply_failures").Increment();
    ArmRetryBackoff();
  }
  stats.converged = !write_failures && stats.divergent == 0;
  recovery_stats_ = stats;
  if (stats.converged) {
    sinks_.OnRecovery(RecoveryEvent{.tick = tick_,
                                    .adopted = stats.adopted,
                                    .redone = stats.redone,
                                    .divergent = stats.divergent,
                                    .recovery_ticks = 0,
                                    .converged = true});
    metrics_.histogram("controller.recovery_ticks", {0.0, 1.0, 2.0, 4.0, 8.0, 16.0})
        .Observe(0.0);
  } else {
    // The window closes at the first clean apply (NoteApplySuccess).
    recovery_pending_ = true;
    recovery_start_tick_ = tick_;
  }
  return stats;
}

void DcatController::EmitTickEventsAndMetrics() {
  // Category transitions cover the whole interval: detector-driven moves to
  // Reclaim, the Fig. 6 machine, and allocation-time fixups alike.
  for (const TenantState& t : tenants_) {
    if (t.category != t.category_at_tick_start) {
      sinks_.OnCategoryChange(CategoryChangeEvent{.tick = tick_,
                                                  .tenant = t.spec.id,
                                                  .from = t.category_at_tick_start,
                                                  .to = t.category});
    }
  }
  size_t category_counts[6] = {};
  for (const TenantState& t : tenants_) {
    TickEvent entry;
    entry.tick = tick_;
    entry.tenant = t.spec.id;
    entry.category = t.category;
    entry.ways = t.ways;
    entry.ipc = t.sample.ipc();
    entry.norm_ipc = NormalizedIpc(t);
    entry.llc_miss_rate = t.sample.llc_miss_rate();
    entry.phase_changed = t.phase_changed;
    sinks_.OnTick(entry);
    if (logging_) {
      decision_log_.OnTick(entry);
    }
    ++category_counts[static_cast<size_t>(t.category)];
  }
  metrics_.counter("controller.ticks").Increment();
  metrics_.gauge("controller.tenants").Set(static_cast<double>(tenants_.size()));
  for (const Category c : {Category::kReclaim, Category::kKeeper, Category::kDonor,
                           Category::kReceiver, Category::kStreaming, Category::kUnknown}) {
    metrics_.gauge(std::string("controller.category.") + CategoryName(c))
        .Set(static_cast<double>(category_counts[static_cast<size_t>(c)]));
  }
}

double DcatController::NormalizedIpc(const TenantState& tenant) const {
  if (!tenant.has_phase) {
    return 0.0;
  }
  const PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
  if (!phase.baseline_valid || phase.baseline_ipc <= 0.0) {
    return 0.0;
  }
  return tenant.sample.ipc() / phase.baseline_ipc;
}

TenantSnapshot DcatController::MakeSnapshot(const TenantState& tenant) const {
  TenantSnapshot s;
  s.id = tenant.spec.id;
  s.name = tenant.spec.name;
  s.category = tenant.category;
  s.cos = tenant.cos;
  s.ways = tenant.ways;
  s.baseline_ways = tenant.spec.baseline_ways;
  s.ipc = tenant.sample.ipc();
  s.norm_ipc = NormalizedIpc(tenant);
  s.llc_miss_rate = tenant.sample.llc_miss_rate();
  s.phase_changed = tenant.phase_changed;
  s.has_phase = tenant.has_phase;
  s.grow_denied = tenant.grow_denied;
  s.group = tenant.group;
  s.measuring_baseline = tenant.measuring_baseline;
  s.quarantined = tenant.quarantined;
  s.steady_intervals = tenant.detector.steady_intervals();
  s.signature_rel_delta = tenant.detector.last_relative_delta();
  if (tenant.has_phase) {
    const PhaseBook::PhaseRecord& phase = CurrentPhase(tenant);
    s.baseline_valid = phase.baseline_valid;
    s.baseline_ipc = phase.baseline_ipc;
    s.table = phase.table;
  }
  return s;
}

TenantSnapshot DcatController::Snapshot(TenantId id) const {
  return MakeSnapshot(FindTenant(id));
}

ControllerSnapshot DcatController::Snapshot() const {
  ControllerSnapshot s;
  s.tick = tick_;
  s.policy = policy_->name();
  s.total_ways = cat_->NumWays();
  s.degraded = mode_ == Mode::kDegraded;
  s.tenants.reserve(tenants_.size());
  std::vector<uint32_t> counted_groups;
  for (const TenantState& t : tenants_) {
    s.tenants.push_back(MakeSnapshot(t));
    if (clustered_) {
      // A shared COS's ways count once toward the socket budget.
      if (std::find(counted_groups.begin(), counted_groups.end(), t.group) ==
          counted_groups.end()) {
        counted_groups.push_back(t.group);
        s.allocated_ways += t.ways;
      }
    } else {
      s.allocated_ways += t.ways;
    }
  }
  s.pool_ways = s.total_ways > s.allocated_ways ? s.total_ways - s.allocated_ways : 0;
  return s;
}

uint32_t DcatController::TenantWays(TenantId id) const { return FindTenant(id).ways; }

}  // namespace dcat
