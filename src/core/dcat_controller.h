// The dCat controller: dynamic LLC management on top of CAT (§3, §4).
//
// Runs as a periodic daemon loop. Every interval it executes the paper's
// five steps for each tenant:
//
//   1. Get Baseline        — after a phase change the tenant returns to its
//                            contracted ways; the next interval's IPC at
//                            that size is the phase's baseline.
//   2. Collect Statistics  — per-core counter deltas, summed per tenant.
//   3. Detect Phase Change — via mem-accesses-per-instruction (PhaseDetector).
//   4. Categorize          — the Fig. 6 state machine (Category).
//   5. Allocate Cache      — reclaim first, then grow Unknowns (priority)
//                            and Receivers from the free pool; optional
//                            max-performance rebalancing over the
//                            performance tables when the pool runs dry.
//
// Guarantee: a tenant in any cache-using phase is never held below its
// baseline ways unless it donated them voluntarily (Donor/Streaming); a
// phase change immediately reclaims the baseline, shrinking over-baseline
// tenants if the free pool cannot cover it.
//
// Observability: every decision is published through the telemetry layer
// (src/telemetry/) — phase changes, category transitions and allocation
// moves (with reasons) stream to registered EventSinks, counters/gauges/
// histograms accumulate in a MetricsRegistry, and point-in-time state is
// read through the Snapshot() value API.
#ifndef SRC_CORE_DCAT_CONTROLLER_H_
#define SRC_CORE_DCAT_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/allocator.h"
#include "src/core/category.h"
#include "src/core/config.h"
#include "src/core/controller_state.h"
#include "src/core/manager.h"
#include "src/core/metrics.h"
#include "src/core/performance_table.h"
#include "src/core/phase_detector.h"
#include "src/policies/policy.h"
#include "src/pqos/pqos.h"
#include "src/telemetry/events.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace dcat {

// Immutable value copy of one tenant's controller state — the single
// introspection surface for tools, tests and benchmarks.
struct TenantSnapshot {
  TenantId id = 0;
  std::string name;
  Category category = Category::kDonor;
  // Class of service the tenant's cores are associated with; lets auditors
  // (src/verify/) read the tenant's capacity mask off the CAT backend.
  uint8_t cos = 0;
  uint32_t ways = 0;
  uint32_t baseline_ways = 0;
  // Raw IPC of the last interval, and IPC normalized to the current phase's
  // baseline (0 until that baseline is established).
  double ipc = 0.0;
  double norm_ipc = 0.0;
  double llc_miss_rate = 0.0;
  bool phase_changed = false;  // fired during the last interval
  bool has_phase = false;
  bool baseline_valid = false;
  double baseline_ipc = 0.0;
  bool grow_denied = false;  // wanted a way last interval, pool was dry
  // COS-sharing group (clustered policies); equals cos semantics otherwise.
  uint32_t group = 0;
  // True while waiting for one clean interval at baseline ways to establish
  // the phase's baseline IPC — the hybrid-fidelity engine must not freeze
  // counters during that measurement.
  bool measuring_baseline = false;
  // The last interval's sample was rejected by the counter-anomaly
  // quarantine (not folded into EWMAs or the phase detector).
  bool quarantined = false;
  // Steadiness view of the tenant's phase detector: consecutive no-change
  // intervals and the last sample's relative signature delta (same units as
  // phase_change_thr). Feeds the hybrid-fidelity entry guards.
  uint64_t steady_intervals = 0;
  double signature_rel_delta = 0.0;
  // Copy of the current phase's performance table; empty before the first
  // phase is identified.
  PerformanceTable table;
};

// Whole-socket controller state at one instant.
struct ControllerSnapshot {
  uint64_t tick = 0;
  std::string policy;  // canonical PolicyRegistry name
  uint32_t total_ways = 0;
  uint32_t allocated_ways = 0;
  uint32_t pool_ways = 0;
  // True while the controller has fallen back to the static baseline
  // partition after repeated backend failures.
  bool degraded = false;
  std::vector<TenantSnapshot> tenants;
};

class DcatController : public CacheManager {
 public:
  DcatController(CatController* cat, const MonitoringProvider* monitor, DcatConfig config);

  std::string name() const override { return "dcat"; }
  AdmitStatus AddTenant(const TenantSpec& spec) override;
  // Releases the tenant's ways into the free pool and recycles its COS
  // (the freed class of service is reused by the next admission).
  void RemoveTenant(TenantId id) override;
  void Tick() override;
  uint32_t TenantWays(TenantId id) const override;
  size_t num_tenants() const { return tenants_.size(); }
  bool HasTenant(TenantId id) const;
  // True while the controller runs the static-baseline fallback after
  // repeated backend failures (it keeps retrying to re-enter dynamic mode).
  bool degraded() const { return mode_ == Mode::kDegraded; }

  // --- introspection ---

  // Value snapshot of one tenant (aborts on unknown id, like every other
  // per-tenant accessor) or of the whole controller.
  TenantSnapshot Snapshot(TenantId id) const;
  ControllerSnapshot Snapshot() const;
  uint64_t ticks() const { return tick_; }

  // The active allocation policy (created from DcatConfig::policy via the
  // PolicyRegistry) and whether it maps several tenants onto shared COSes.
  const Policy& policy() const { return *policy_; }
  bool clustered() const { return clustered_; }

  // --- crash recovery (src/recovery/) ---

  // Attaches the write-ahead decision journal (borrowed). Once attached,
  // the controller reports its full state + intent to the journal before
  // every mask apply and after every contract change. Never blocks the
  // control loop: a journal that fails to persist costs recovery fidelity,
  // not availability.
  void AttachJournal(ControllerJournal* journal) { journal_ = journal; }

  // Bit-exact image of everything a restarted controller needs; doubles
  // round-trip by bit pattern through the recovery codec.
  ControllerPersistentState ExportState() const;
  // Replaces the controller's state with a journaled image. The policy in
  // `state` must match this controller's configured policy (checked by the
  // recovery path before calling). Scratch per-tick fields reset.
  void ImportState(const ControllerPersistentState& state);

  // Per-restart reconciliation stats (mirrored into RecoveryEvent).
  struct RecoveryApplyStats {
    uint32_t adopted = 0;    // COSes whose hardware already matched the intent
    uint32_t redone = 0;     // COSes re-programmed to the journaled intent
    uint32_t divergent = 0;  // tenants parked in Reclaim (hardware matched
                             // neither the prior acked mask nor the intent)
    bool converged = true;   // no write failures and no divergence
  };
  // Reconciles imported state against the live backend: rolls the journaled
  // intent forward COS by COS (adopting hardware that already matches,
  // re-writing COSes stuck at the pre-apply mask), parks divergent tenants
  // in Reclaim for the normal machinery, and silently repairs core
  // associations/orphans. `intent` is the interrupted tick's journaled
  // intent, or nullptr when the last record was an at-rest snapshot.
  RecoveryApplyStats CompleteRecovery(const DecisionIntent* intent);

  // --- telemetry ---

  // Registers a sink for decision events (borrowed; must outlive the
  // controller or be removed by destroying the controller first).
  void AddEventSink(EventSink* sink) { sinks_.AddSink(sink); }

  // Control-loop metrics (ticks, phase changes, reclaims, pool occupancy,
  // per-category tenant counts, allocation latency).
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // One row of the decision log, recorded per tenant per tick.
  using LogEntry = TickEvent;
  const std::vector<LogEntry>& log() const { return decision_log_.rows(); }
  void set_logging(bool enabled) { logging_ = enabled; }
  // CSV rendering of the decision log for offline analysis/audit (the
  // DecisionLog exporter over the event stream).
  std::string LogToCsv() const { return decision_log_.ToCsv(); }

 private:
  struct TenantState {
    TenantSpec spec;
    uint8_t cos = 0;
    // COS-sharing group (clustered policies only): tenants with equal
    // group ids share one COS. Assigned at admission, overwritten by every
    // policy decision. Meaningless in the classic one-tenant-per-COS mode.
    uint32_t group = 0;
    Category category = Category::kDonor;  // pre-arrival: nothing running
    uint32_t ways = 1;        // allocation in effect (== during last interval)
    // Capacity mask the backend acknowledged for this tenant's COS; the
    // reference reconciliation compares GetCosMask against. 0 = never
    // successfully programmed.
    uint32_t mask = 0;
    PerfCounterBlock last_counters;
    PhaseDetector detector;
    PhaseBook book;
    size_t phase_index = 0;
    bool has_phase = false;
    // True while waiting for one clean interval at baseline ways to
    // establish the phase's baseline IPC.
    bool measuring_baseline = false;
    double last_ipc = 0.0;
    bool has_last_ipc = false;
    // Allocation in effect during the *previous* measured interval; lets the
    // categorizer distinguish "grew and did not improve" (streaming
    // evidence) from "could not grow" (no evidence).
    uint32_t prev_interval_ways = 0;
    // Growth was requested last tick but the pool could not serve it;
    // feeds the Streaming determination ("all available cache used").
    bool grow_denied = false;
    WorkloadSample sample;  // scratch: this tick's sample
    bool phase_changed = false;  // scratch
    Category category_at_tick_start = Category::kDonor;  // scratch
    // --- counter-anomaly quarantine ---
    uint32_t anomaly_streak = 0;   // consecutive quarantined intervals
    bool prev_active = false;      // last accepted interval showed activity
    bool quarantined = false;      // scratch: this tick's sample was rejected
    // Cumulative MBM bytes of the tenant's COS at the last sample — the
    // independent liveness signal that separates frozen perf counters
    // (MBM still moving) from a genuinely stalled/idle interval (MBM flat).
    uint64_t last_mbm = 0;
  };

  enum class Mode { kDynamic, kDegraded };

  TenantState& FindTenant(TenantId id);
  const TenantState& FindTenant(TenantId id) const;

  WorkloadSample CollectSample(TenantState& tenant);
  void DetectPhase(TenantState& tenant);
  void UpdateBaselineAndTable(TenantState& tenant);
  void Categorize(TenantState& tenant);
  // Snapshots the decision problem for the policy, and the clustered
  // admission path (shared-COS layout, group assignment).
  PolicyInputs BuildPolicyInputs() const;
  AdmitStatus AddTenantClustered(const TenantSpec& spec);
  void AllocateAndApply();
  // Transactionally programs the target allocation: nothing commits to the
  // controller's bookkeeping unless every mask write is acknowledged (a
  // partial failure rolls the written masks back). Returns false on failure.
  bool ApplyMasks(const std::vector<uint32_t>& targets);
  // Shared-COS variant: tenants with equal group ids (and therefore equal
  // targets) land on one COS; group order maps to COS 1..G by first
  // occurrence, and cores follow their tenant's COS on commit.
  bool ApplyMasksClustered(const std::vector<uint32_t>& targets,
                           const std::vector<uint32_t>& groups);

  // --- fault tolerance ---
  // Bounded-retry, verify-after-write primitives. On real hardware the
  // retry loop would back off between attempts; here retries are immediate
  // (the simulated backend has no time axis inside a tick).
  bool WriteMaskWithRetry(uint8_t cos, TenantId tenant, uint32_t mask);
  // One element of a batched apply: bookkeeping for the retry loop plus the
  // landed flag the rollback path reads after a failure.
  struct BatchMaskWrite {
    uint8_t cos = 0;
    TenantId tenant = 0;
    uint32_t mask = 0;
    uint32_t attempts = 0;
    bool done = false;
  };
  // Batched counterpart of WriteMaskWithRetry: programs all elements through
  // CatController::ApplyMaskBatch, re-batching the stragglers until every
  // element lands or exhausts its per-element attempt budget
  // (1 + max_write_retries, same as the per-COS path). Verify-after-write
  // and the fault metrics/events carry over per element. Returns true when
  // every element landed; `writes[i].done` tells the caller exactly what to
  // roll back otherwise.
  bool WriteMaskBatchWithRetry(std::vector<BatchMaskWrite>& writes);
  bool AssociateWithRetry(uint16_t core, uint8_t cos, TenantId tenant);
  // Start-of-tick audit: re-programs masks/associations that drifted from
  // the acknowledged state (silent drops, external interference) and keeps
  // retrying orphaned core releases from failed removals.
  void ReconcileBackend();
  // Counter-anomaly quarantine over the summed per-tenant delta; returns
  // the detected anomaly kind, or nullopt for a plausible sample.
  std::optional<CounterAnomalyKind> ClassifyAnomaly(const TenantState& tenant,
                                                    const PerfCounterBlock& sum,
                                                    const PerfCounterBlock& delta,
                                                    uint64_t mbm_delta) const;
  void EnterDegraded();
  void ExitDegraded();
  void DegradedTick();
  // Exponential backoff with deterministic jitter after a failed apply:
  // arms next_apply_tick_; ticks before it sample and emit but skip the
  // allocate/apply step (SkipBackoffTick).
  void ArmRetryBackoff();
  void SkipBackoffTick();
  // Reports the tick's full state + intent to the attached journal (no-op
  // without one).
  void JournalDecision(const std::vector<uint32_t>& targets,
                       const std::vector<uint32_t>& groups, bool degraded);
  void JournalContractChange();
  // First clean apply after a restart closes the recovery window: emits
  // RecoveryEvent and observes the recovery_ticks histogram.
  void NoteApplySuccess();

  TenantSnapshot MakeSnapshot(const TenantState& tenant) const;
  double NormalizedIpc(const TenantState& tenant) const;
  void EmitTickEventsAndMetrics();

  PhaseBook::PhaseRecord& CurrentPhase(TenantState& tenant) {
    return tenant.book.record(tenant.phase_index);
  }
  const PhaseBook::PhaseRecord& CurrentPhase(const TenantState& tenant) const {
    return tenant.book.record(tenant.phase_index);
  }

  CatController* cat_;
  const MonitoringProvider* monitor_;
  DcatConfig config_;
  std::unique_ptr<Policy> policy_;
  bool clustered_ = false;
  // Clustered mode: the mask the backend acknowledged per COS (0 = never
  // programmed), and the id source for admission-time groups.
  std::vector<uint32_t> cos_acked_mask_;
  uint32_t next_group_id_ = 0;
  std::vector<TenantState> tenants_;
  uint64_t tick_ = 0;
  bool logging_ = true;
  Mode mode_ = Mode::kDynamic;
  uint32_t consecutive_apply_failures_ = 0;
  uint32_t degraded_clean_ticks_ = 0;
  // Backoff: first tick allowed to attempt another apply (0 = none armed).
  uint64_t next_apply_tick_ = 0;
  // Write-ahead journal hook (borrowed; may be null).
  ControllerJournal* journal_ = nullptr;
  // Recovery window: set by CompleteRecovery when the backend could not be
  // fully reconciled at restart; closed by the first clean apply.
  bool recovery_pending_ = false;
  uint64_t recovery_start_tick_ = 0;
  RecoveryApplyStats recovery_stats_;
  // Cores whose release (AssociateCore(core, 0)) failed during tenant
  // removal; retried every reconciliation pass.
  std::vector<uint16_t> orphaned_cores_;
  EventFanout sinks_;
  DecisionLog decision_log_;
  MetricsRegistry metrics_;
};

}  // namespace dcat

#endif  // SRC_CORE_DCAT_CONTROLLER_H_
