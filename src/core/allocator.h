// Cache-way budgeting and mask layout (Step 5, Allocate Cache).
//
// Pure decision logic, separated from the controller so both allocation
// policies are directly unit-testable — including the paper's worked
// example (§3.5: workloads A and B with populated tables, C reclaiming
// 2 ways; the optimum is A=3, B=5).
#ifndef SRC_CORE_ALLOCATOR_H_
#define SRC_CORE_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/performance_table.h"

namespace dcat {

// One workload's options in the max-performance search.
struct TableChoices {
  // Candidate (ways, predicted normalized IPC) pairs, increasing ways.
  // Must be non-empty; the solver picks exactly one per workload.
  std::vector<std::pair<uint32_t, double>> options;
};

// Maximizes the sum of predicted normalized IPC subject to total ways
// <= budget. Returns one chosen ways-count per workload (aligned with the
// input order), or an empty vector when no combination fits the budget.
// Exact dynamic program: O(n * budget * options).
std::vector<uint32_t> SolveMaxPerformance(const std::vector<TableChoices>& workloads,
                                          uint32_t budget);

// Lays out contiguous, non-overlapping capacity masks for the given
// way counts, starting at way 0. Returns nullopt when the request is not
// expressible in CAT — a zero-way count or a sum exceeding total_ways —
// so callers reject the allocation instead of dying.
std::optional<std::vector<uint32_t>> LayoutMasks(
    const std::vector<uint32_t>& ways_per_workload, uint32_t total_ways);

}  // namespace dcat

#endif  // SRC_CORE_ALLOCATOR_H_
