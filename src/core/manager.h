// Common interface for LLC management strategies.
//
// Three implementations mirror the paper's three evaluation regimes:
//   * SharedCacheManager — no CAT; every core may fill every way.
//   * StaticCatManager   — CAT partitions fixed at tenant admission
//                          (the "static partition" baseline).
//   * DcatController     — the paper's contribution (dcat_controller.h).
#ifndef SRC_CORE_MANAGER_H_
#define SRC_CORE_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/pqos/pqos.h"

namespace dcat {

using TenantId = uint32_t;

// A tenant's contract: which cores it owns exclusively (no CPU
// overprovisioning, §4) and how many LLC ways it paid for.
struct TenantSpec {
  TenantId id = 0;
  std::string name;
  std::vector<uint16_t> cores;
  uint32_t baseline_ways = 1;
};

// Outcome of an admission request. A bad tenant spec is a rejected request,
// not a dead daemon: the cloud scheduler upstream retries elsewhere.
enum class AdmitStatus {
  kOk,
  kTooManyTenants,  // COS entries exhausted by tenant count
  kOversubscribed,  // Σ baseline ways would exceed the LLC
  kBelowMinimum,    // baseline_ways below the manager's minimum allocation
  kNoFreeCos,       // no class of service left to program
  kBackendError,    // the CAT backend refused the admission writes
};

inline constexpr const char* AdmitStatusName(AdmitStatus status) {
  switch (status) {
    case AdmitStatus::kOk:
      return "ok";
    case AdmitStatus::kTooManyTenants:
      return "too-many-tenants";
    case AdmitStatus::kOversubscribed:
      return "oversubscribed";
    case AdmitStatus::kBelowMinimum:
      return "below-minimum";
    case AdmitStatus::kNoFreeCos:
      return "no-free-cos";
    case AdmitStatus::kBackendError:
      return "backend-error";
  }
  return "?";
}

class CacheManager {
 public:
  virtual ~CacheManager() = default;

  virtual std::string name() const = 0;

  // Admits a tenant. Contract violations (too many tenants for the COS
  // count, oversubscribed baseline ways, backend refusal) reject the
  // request; on non-kOk the manager's state is unchanged.
  virtual AdmitStatus AddTenant(const TenantSpec& spec) = 0;

  // Evicts a tenant (VM terminated / migrated): its cores return to the
  // unmanaged COS 0 and its cache resources are recycled. Unknown ids are
  // ignored. Default: no bookkeeping needed (shared cache).
  virtual void RemoveTenant(TenantId id) { (void)id; }

  // One control interval. Called by the host loop every interval_seconds.
  virtual void Tick() = 0;

  // Current LLC ways allocated to the tenant (for time-series recording).
  virtual uint32_t TenantWays(TenantId id) const = 0;
};

}  // namespace dcat

#endif  // SRC_CORE_MANAGER_H_
