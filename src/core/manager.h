// Common interface for LLC management strategies.
//
// Three implementations mirror the paper's three evaluation regimes:
//   * SharedCacheManager — no CAT; every core may fill every way.
//   * StaticCatManager   — CAT partitions fixed at tenant admission
//                          (the "static partition" baseline).
//   * DcatController     — the paper's contribution (dcat_controller.h).
#ifndef SRC_CORE_MANAGER_H_
#define SRC_CORE_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/pqos/pqos.h"

namespace dcat {

using TenantId = uint32_t;

// A tenant's contract: which cores it owns exclusively (no CPU
// overprovisioning, §4) and how many LLC ways it paid for.
struct TenantSpec {
  TenantId id = 0;
  std::string name;
  std::vector<uint16_t> cores;
  uint32_t baseline_ways = 1;
};

class CacheManager {
 public:
  virtual ~CacheManager() = default;

  virtual std::string name() const = 0;

  // Admits a tenant. Aborts on contract violations (too many tenants for
  // the COS count, oversubscribed baseline ways) — admission control is the
  // cloud scheduler's job, upstream of the cache manager.
  virtual void AddTenant(const TenantSpec& spec) = 0;

  // Evicts a tenant (VM terminated / migrated): its cores return to the
  // unmanaged COS 0 and its cache resources are recycled. Unknown ids are
  // ignored. Default: no bookkeeping needed (shared cache).
  virtual void RemoveTenant(TenantId id) { (void)id; }

  // One control interval. Called by the host loop every interval_seconds.
  virtual void Tick() = 0;

  // Current LLC ways allocated to the tenant (for time-series recording).
  virtual uint32_t TenantWays(TenantId id) const = 0;
};

}  // namespace dcat

#endif  // SRC_CORE_MANAGER_H_
