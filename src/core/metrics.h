// Per-interval workload metrics derived from perf counter deltas.
//
// These are the quantities Step 2 (Collect Statistics) produces and the
// later steps consume. For multi-core workloads the counters of all
// assigned cores are summed before the rates are derived, matching §3.2
// ("dCat measures the performance of all used cores").
#ifndef SRC_CORE_METRICS_H_
#define SRC_CORE_METRICS_H_

#include <cstdint>

#include "src/sim/perf_counters.h"

namespace dcat {

struct WorkloadSample {
  PerfCounterBlock delta;

  uint64_t instructions() const { return delta.retired_instructions; }
  double ipc() const { return delta.Ipc(); }
  double llc_miss_rate() const { return delta.LlcMissRate(); }
  double mem_per_instruction() const { return delta.MemAccessesPerInstruction(); }
  double llc_refs_per_kilo_instruction() const {
    return delta.retired_instructions > 0
               ? 1000.0 * static_cast<double>(delta.llc_references) /
                     static_cast<double>(delta.retired_instructions)
               : 0.0;
  }
};

}  // namespace dcat

#endif  // SRC_CORE_METRICS_H_
