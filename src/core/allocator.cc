#include "src/core/allocator.h"

#include <cstdio>
#include <cstdlib>

#include "src/pqos/mask.h"

namespace dcat {

std::vector<uint32_t> SolveMaxPerformance(const std::vector<TableChoices>& workloads,
                                          uint32_t budget) {
  const size_t n = workloads.size();
  if (n == 0) {
    return {};
  }
  constexpr double kNegInf = -1e18;
  // dp[i][b]: best total value using workloads [0, i) with b ways spent.
  std::vector<std::vector<double>> dp(n + 1, std::vector<double>(budget + 1, kNegInf));
  std::vector<std::vector<int>> choice(n + 1, std::vector<int>(budget + 1, -1));
  dp[0][0] = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (uint32_t b = 0; b <= budget; ++b) {
      if (dp[i][b] == kNegInf) {
        continue;
      }
      for (size_t k = 0; k < workloads[i].options.size(); ++k) {
        const auto& [ways, value] = workloads[i].options[k];
        if (b + ways > budget) {
          continue;
        }
        if (dp[i][b] + value > dp[i + 1][b + ways]) {
          dp[i + 1][b + ways] = dp[i][b] + value;
          choice[i + 1][b + ways] = static_cast<int>(k);
        }
      }
    }
  }
  // Best final budget point.
  uint32_t best_b = 0;
  double best = kNegInf;
  for (uint32_t b = 0; b <= budget; ++b) {
    if (dp[n][b] > best) {
      best = dp[n][b];
      best_b = b;
    }
  }
  if (best == kNegInf) {
    return {};
  }
  // Reconstruct.
  std::vector<uint32_t> result(n, 0);
  uint32_t b = best_b;
  for (size_t i = n; i-- > 0;) {
    const int k = choice[i + 1][b];
    result[i] = workloads[i].options[static_cast<size_t>(k)].first;
    b -= result[i];
  }
  return result;
}

std::optional<std::vector<uint32_t>> LayoutMasks(
    const std::vector<uint32_t>& ways_per_workload, uint32_t total_ways) {
  uint32_t used = 0;
  for (uint32_t w : ways_per_workload) {
    if (w == 0) {
      std::fprintf(stderr, "LayoutMasks: zero-way allocation is not expressible in CAT\n");
      return std::nullopt;
    }
    used += w;
  }
  if (used > total_ways) {
    std::fprintf(stderr, "LayoutMasks: %u ways requested > %u available\n", used, total_ways);
    return std::nullopt;
  }
  std::vector<uint32_t> masks;
  masks.reserve(ways_per_workload.size());
  uint32_t offset = 0;
  for (uint32_t w : ways_per_workload) {
    masks.push_back(MakeWayMask(offset, w));
    offset += w;
  }
  return masks;
}

}  // namespace dcat
