#include "src/core/performance_table.h"

#include <cmath>
#include <cstdio>

namespace dcat {
namespace {
constexpr double kEwmaAlpha = 0.5;
}  // namespace

void PerformanceTable::Record(uint32_t ways, double norm_ipc) {
  auto [it, inserted] = entries_.emplace(ways, norm_ipc);
  if (!inserted) {
    const double before = it->second;
    it->second = kEwmaAlpha * norm_ipc + (1.0 - kEwmaAlpha) * before;
    error_band_[ways] = std::abs(it->second - before);
  } else {
    error_band_[ways] = 0.0;  // a single sample carries no disagreement yet
  }
}

std::optional<double> PerformanceTable::Get(uint32_t ways) const {
  if (auto it = entries_.find(ways); it != entries_.end()) {
    return it->second;
  }
  return std::nullopt;
}

std::optional<double> PerformanceTable::EvaluateNormIpc(double ways) const {
  if (entries_.empty()) {
    return std::nullopt;
  }
  // Clamp outside the measured range: the table never extrapolates.
  if (ways <= entries_.begin()->first) {
    return entries_.begin()->second;
  }
  if (ways >= entries_.rbegin()->first) {
    return entries_.rbegin()->second;
  }
  const auto upper = entries_.lower_bound(static_cast<uint32_t>(std::ceil(ways)));
  const auto lower = std::prev(upper);
  if (upper->first == lower->first) {
    return lower->second;
  }
  const double t = (ways - lower->first) /
                   static_cast<double>(upper->first - lower->first);
  return lower->second + t * (upper->second - lower->second);
}

double PerformanceTable::ErrorBand(uint32_t ways) const {
  if (auto it = error_band_.find(ways); it != error_band_.end()) {
    return it->second;
  }
  return 0.0;
}

double PerformanceTable::MaxErrorBand() const {
  double max_band = 0.0;
  for (const auto& [ways, band] : error_band_) {
    (void)ways;
    max_band = std::max(max_band, band);
  }
  return max_band;
}

std::optional<uint32_t> PerformanceTable::PreferredWays(double improvement_thr) const {
  if (entries_.empty()) {
    return std::nullopt;
  }
  // Walk in increasing ways; the preferred size is the first one that no
  // larger measured size beats by at least the threshold.
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    bool beaten = false;
    for (auto later = std::next(it); later != entries_.end(); ++later) {
      if (later->second >= it->second * (1.0 + improvement_thr)) {
        beaten = true;
        break;
      }
    }
    if (!beaten) {
      return it->first;
    }
  }
  return entries_.rbegin()->first;
}

std::optional<double> PerformanceTable::Improvement(uint32_t from_ways, uint32_t to_ways) const {
  const auto from = Get(from_ways);
  const auto to = Get(to_ways);
  if (!from.has_value() || !to.has_value() || *from <= 0.0) {
    return std::nullopt;
  }
  return (*to - *from) / *from;
}

std::vector<std::pair<uint32_t, double>> PerformanceTable::Entries() const {
  return {entries_.begin(), entries_.end()};
}

std::string PerformanceTable::ToString() const {
  std::string out;
  char buf[48];
  for (const auto& [ways, ipc] : entries_) {
    std::snprintf(buf, sizeof(buf), "%u:%.3f ", ways, ipc);
    out += buf;
  }
  return out;
}

bool PhaseBook::Matches(double a, double b) const {
  const double reference = std::max(std::abs(a), std::abs(b));
  if (reference == 0.0) {
    return true;  // both idle
  }
  return std::abs(a - b) <= tolerance_ * reference;
}

size_t PhaseBook::Find(double signature) const {
  for (size_t i = 0; i < records_.size(); ++i) {
    if (Matches(records_[i].signature, signature)) {
      return i;
    }
  }
  return kNotFound;
}

size_t PhaseBook::FindOrCreate(double signature) {
  const size_t found = Find(signature);
  if (found != kNotFound) {
    return found;
  }
  PhaseRecord record;
  record.signature = signature;
  records_.push_back(record);
  return records_.size() - 1;
}

}  // namespace dcat
