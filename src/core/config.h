// Tunable parameters of the dCat controller.
//
// Defaults follow the paper's evaluation choices: 3% LLC miss-rate
// threshold (Fig. 8), 5% IPC-improvement threshold (Fig. 9), 10% phase
// detection delta (§3.3), streaming threshold of 3x the baseline
// allocation (§3.4), and a 1-second control interval (§4).
#ifndef SRC_CORE_CONFIG_H_
#define SRC_CORE_CONFIG_H_

#include <cstdint>
#include <string>

namespace dcat {

struct DcatConfig {
  // --- Collect Statistics / Categorize Workloads thresholds ---
  // A workload referencing the LLC less often than this (references per
  // 1000 retired instructions) is considered idle/cache-indifferent and
  // becomes a Donor at the minimum allocation.
  double llc_ref_per_kilo_instruction_thr = 1.0;
  // LLC miss rate above which a workload may benefit from more cache
  // (paper default 3%).
  double llc_miss_rate_thr = 0.03;
  // Relative IPC improvement required to keep growing a Receiver
  // (paper default 5%).
  double ipc_improvement_thr = 0.05;
  // Refinement over the paper: with greedy exploration on, an Unknown
  // workload whose growth steps fall below ipc_improvement_thr but above
  // exploration_gain_floor keeps exploring instead of stopping — capturing
  // workloads with long, shallow utility curves (large Zipf-tailed data
  // sets) that the paper's binary receiver test parks early. Off =
  // paper-faithful: any sub-threshold step ends the growth.
  bool greedy_exploration = true;
  double exploration_gain_floor = 0.01;

  // --- Detect Phase Change ---
  // Relative change in memory-accesses-per-instruction that constitutes a
  // phase change (paper: 10%).
  double phase_change_thr = 0.10;
  // Absolute mem/ins floor below which the workload counts as idle
  // (avoids 0-vs-epsilon flapping on idle VMs).
  double idle_mem_per_ins_epsilon = 0.001;
  // Minimum retired instructions in an interval for metrics to be
  // trustworthy; below it the sample is treated as idle.
  uint64_t min_instructions_per_interval = 10'000;

  // --- Allocate Cache ---
  // Allocation policy, resolved by canonical name in the PolicyRegistry
  // (src/policies/registry.h): "max-fairness" and "max-performance" are the
  // paper's two policies, "lfoc-cluster" shares COSes across compatible
  // tenants. Config files and CLIs also accept the legacy spellings
  // "fair"/"maxperf"/"max_fairness"/"max_performance".
  std::string policy = "max-fairness";
  // A workload whose allocation reaches streaming_multiplier x baseline
  // without IPC improvement is classified Streaming (paper: 3x).
  uint32_t streaming_multiplier = 3;
  // Intel CAT cannot express an empty mask; one way is the floor.
  uint32_t min_ways = 1;
  // Stability refinement over the paper: a Keeper only starts donating
  // ways gradually when its miss rate falls below
  // donor_shrink_fraction * llc_miss_rate_thr. With the fraction at 1.0
  // the behaviour is exactly the paper's; below 1.0 it adds hysteresis so
  // a Receiver that stopped at miss rate ~ thr does not ping-pong.
  double donor_shrink_fraction = 0.5;

  // Control interval in (simulated) seconds; the paper uses 1 s.
  double interval_seconds = 1.0;

  // --- Fault tolerance (robustness layer over a flaky control surface) ---
  // Program all changed COS masks of an apply through one
  // CatController::ApplyMaskBatch call instead of one SetCosMask per COS.
  // Decision-equivalent to per-COS writes on a healthy backend (the fleet
  // suite pins byte-identical traces both ways); batching shrinks the
  // partial-failure window on backends that can validate or commit a batch
  // atomically. Off = the pre-batch per-COS write loop.
  bool batch_mask_apply = true;
  // Write attempts beyond the first for SetCosMask/AssociateCore before the
  // write is abandoned for the interval.
  uint32_t max_write_retries = 3;
  // Consecutive intervals whose mask application failed outright before the
  // controller falls back to the static baseline partition (degraded mode).
  uint32_t degraded_after_failures = 3;
  // Consecutive clean degraded intervals (baseline masks applied and
  // verified) before the controller re-enters dynamic mode.
  uint32_t degraded_recovery_ticks = 2;
  // Interval IPC above this is implausible for any real core; such samples
  // are quarantined as counter garbage. Far above any simulated IPC (<= 4)
  // so fault-free runs are unaffected.
  double counter_sanity_max_ipc = 16.0;
  // Exponential backoff between apply attempts after a failed mask apply:
  // the k-th consecutive failure delays the next attempt by
  // retry_base_ticks * 2^(k-1) intervals plus deterministic jitter, capped
  // at retry_max_ticks. Base 1 / cap 4 keeps the legacy "retry next tick"
  // cadence for the first failure while spacing out persistent outages.
  uint32_t retry_base_ticks = 1;
  uint32_t retry_max_ticks = 4;
};

}  // namespace dcat

#endif  // SRC_CORE_CONFIG_H_
