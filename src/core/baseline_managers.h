// The two comparison regimes from the paper's evaluation.
#ifndef SRC_CORE_BASELINE_MANAGERS_H_
#define SRC_CORE_BASELINE_MANAGERS_H_

#include <map>
#include <vector>

#include "src/core/manager.h"

namespace dcat {

// Fully shared LLC (no CAT): all tenants' cores stay in COS 0, which keeps
// the full capacity mask. The "Shared cache" bars in Figures 1 and 17.
class SharedCacheManager : public CacheManager {
 public:
  explicit SharedCacheManager(CatController* cat);

  std::string name() const override { return "shared"; }
  AdmitStatus AddTenant(const TenantSpec& spec) override;
  void Tick() override {}
  uint32_t TenantWays(TenantId id) const override;

 private:
  CatController* cat_;
};

// Static CAT partitioning: each tenant gets a fixed contiguous segment of
// `baseline_ways` at admission and it never changes. The "Static CAT" bars.
class StaticCatManager : public CacheManager {
 public:
  explicit StaticCatManager(CatController* cat);

  std::string name() const override { return "static-cat"; }
  AdmitStatus AddTenant(const TenantSpec& spec) override;
  // Frees the tenant's segment and COS; a later admission reuses them
  // first-fit (static partitioning fragments — that is part of why the
  // paper argues for dynamic management).
  void RemoveTenant(TenantId id) override;
  void Tick() override {}
  uint32_t TenantWays(TenantId id) const override;

 private:
  struct Segment {
    uint32_t first_way = 0;
    uint32_t ways = 0;
    uint8_t cos = 0;
  };

  CatController* cat_;
  uint32_t next_way_ = 0;
  std::map<TenantId, Segment> segments_;
  std::vector<Segment> free_segments_;
};

}  // namespace dcat

#endif  // SRC_CORE_BASELINE_MANAGERS_H_
