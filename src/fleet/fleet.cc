#include "src/fleet/fleet.h"

#include <sstream>

#include "src/common/thread_pool.h"

namespace dcat {

Scenario FleetShardScenario(const FleetConfig& config, uint32_t shard) {
  const uint64_t seed = config.base_seed + shard;
  if (config.mix == FleetConfig::Mix::kRandom) {
    Scenario scenario = RandomScenario(seed);
    if (config.intervals > 0) {
      scenario.intervals = config.intervals;
    }
    return scenario;
  }
  // Steady mix: the bench_sim_throughput tenant shape — one cache-resident
  // MLR tenant among compute-bound neighbors — settles within ~10 intervals
  // and then holds, which is what lets the hybrid fast path carry the run.
  Scenario scenario;
  scenario.seed = seed;
  scenario.machine = "xeon-e5";
  scenario.intervals = config.intervals > 0 ? config.intervals : 60;
  scenario.initial.push_back(TenantSetup{.id = 1, .workload = "mlr:1M", .baseline_ways = 3});
  scenario.initial.push_back(TenantSetup{.id = 2, .workload = "lookbusy", .baseline_ways = 2});
  scenario.initial.push_back(TenantSetup{.id = 3, .workload = "lookbusy", .baseline_ways = 2});
  return scenario;
}

RunOptions FleetShardRunOptions(const FleetConfig& config, uint32_t shard) {
  RunOptions options;
  options.policy = config.policy;
  options.cycles_per_interval = config.cycles_per_interval;
  options.fidelity = config.fidelity;
  options.settle_intervals = config.settle_intervals;
  if (config.chaos_every > 0 && shard % config.chaos_every == 0) {
    options.inject_faults = true;
    // Decorrelated from the scenario seed so the fault schedule is not the
    // workload stream in disguise.
    options.fault_seed = (config.base_seed + shard) ^ 0x9e3779b9ULL;
    options.fault_profile = config.chaos_profile;
  }
  return options;
}

FleetResult RunFleet(const FleetConfig& config) {
  const uint32_t shards = config.shard_count();
  FleetResult out;
  out.shards.resize(shards);
  // A dedicated pool: shards are coarse (a whole verified scenario each),
  // so one pool item per shard already amortizes dispatch.
  ThreadPool pool(config.jobs);
  pool.ParallelFor(0, shards, [&](size_t s) {
    FleetShardReport& report = out.shards[s];
    report.host = static_cast<uint32_t>(s) / config.sockets_per_host;
    report.socket = static_cast<uint32_t>(s) % config.sockets_per_host;
    report.seed = config.base_seed + s;
    const RunOptions options = FleetShardRunOptions(config, static_cast<uint32_t>(s));
    report.faulted = options.inject_faults;
    report.result = RunScenario(FleetShardScenario(config, static_cast<uint32_t>(s)), options);
  });

  // Aggregation happens after the pool barrier, in shard order, so every
  // number and the merged registry are independent of the job count.
  out.metrics.gauge("fleet.hosts").Set(config.hosts);
  out.metrics.gauge("fleet.sockets_per_host").Set(config.sockets_per_host);
  out.metrics.gauge("fleet.shards").Set(shards);
  for (const FleetShardReport& report : out.shards) {
    out.ticks_total += report.result.ticks;
    out.accesses_total += report.result.accesses;
    out.violations_total += report.result.violations.size();
    for (const auto& [name, counter] : report.result.metrics.counters()) {
      out.metrics.counter(name).Increment(counter.value());
    }
  }
  out.metrics.counter("fleet.ticks_total").Increment(out.ticks_total);
  out.metrics.counter("fleet.accesses_total").Increment(out.accesses_total);
  out.metrics.counter("fleet.violations_total").Increment(out.violations_total);
  return out;
}

std::string FleetResult::MergedTrace() const {
  std::string out;
  for (const FleetShardReport& shard : shards) {
    const std::string tag = "{\"host\":" + std::to_string(shard.host) +
                            ",\"socket\":" + std::to_string(shard.socket) + ",";
    std::istringstream in(shard.result.trace);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.front() == '{') {
        out += tag;
        out.append(line, 1, line.size() - 1);
      } else {
        out += line;
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace dcat
