// Fleet-scale simulation: M hosts × N sockets in one process.
//
// The ROADMAP's north star is "one controller instance per socket, a fleet
// scheduler above them". This layer provides the substrate: every
// (host, socket) pair is one independent *shard* — its own Socket, pqos
// chain, DcatController and (optionally) hybrid-fidelity engine — run as a
// complete verified scenario on the PR-3 thread pool.
//
// Shard isolation rules (what makes sharding deterministic):
//   * A shard owns all of its mutable state. Sockets, RNGs, fault plans,
//     event sinks and the invariant checker are constructed inside the
//     shard's task; nothing observable is shared across shards and there
//     are no locks on the simulation path.
//   * Everything a shard does derives from its own seed
//     (base_seed + shard index), so the shard's decision trace is a pure
//     function of (config, shard) — independent of `jobs`, scheduling
//     order, or which worker thread ran it.
//   * Results are merged by shard index after the pool barrier, so the
//     merged trace and all aggregates are byte-stable across job counts.
//
// Determinism contract (pinned by tests/fleet/): each shard's trace is
// byte-identical between jobs=1 and jobs=N and equal to a standalone
// RunScenario of the same (scenario, options); chaos on one shard cannot
// perturb any other shard.
#ifndef SRC_FLEET_FLEET_H_
#define SRC_FLEET_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/analytic_model.h"
#include "src/telemetry/metrics.h"
#include "src/verify/scenario.h"

namespace dcat {

struct FleetConfig {
  // Fleet shape: hosts × sockets_per_host independent controller shards.
  uint32_t hosts = 1;
  uint32_t sockets_per_host = 1;
  // Worker threads for the shard fan-out (0 = ThreadPool::DefaultJobs()).
  size_t jobs = 0;
  // Shard s runs seed base_seed + s.
  uint64_t base_seed = 1;

  // Controller/run parameters applied to every shard.
  std::string policy = "max-fairness";
  double cycles_per_interval = 1e6;
  FidelityConfig fidelity;

  // Tenant mix per shard: kRandom draws the fuzzer's RandomScenario from
  // the shard seed (mix, churn and config perturbations all differ per
  // shard); kSteady replicates the steady-phase throughput mix (one
  // cache-resident MLR tenant plus two compute-bound neighbors) with
  // per-shard workload seeds — the shape the fleet bench scales.
  enum class Mix { kRandom, kSteady };
  Mix mix = Mix::kRandom;
  // Intervals per shard; 0 = the scenario's own length (random mix) or 60
  // (steady mix).
  uint32_t intervals = 0;

  // Chaos composition: when chaos_every > 0, shard s runs under FaultyPqos
  // (profile chaos_profile) iff s % chaos_every == 0. Healthy shards are
  // untouched — isolation means their traces match a chaos-free fleet.
  uint32_t chaos_every = 0;
  std::string chaos_profile = "mixed";
  uint32_t settle_intervals = 10;

  uint32_t shard_count() const { return hosts * sockets_per_host; }
};

// One shard's outcome. `result` is exactly what a standalone RunScenario
// of (FleetShardScenario, FleetShardRunOptions) produces.
struct FleetShardReport {
  uint32_t host = 0;
  uint32_t socket = 0;
  uint64_t seed = 0;
  bool faulted = false;
  ScenarioResult result;
  bool ok() const { return result.ok(); }
};

struct FleetResult {
  std::vector<FleetShardReport> shards;  // shard-index (host-major) order
  uint64_t ticks_total = 0;
  uint64_t accesses_total = 0;
  uint64_t violations_total = 0;
  // fleet.* gauges/counters plus every per-shard controller counter summed
  // under its own name.
  MetricsRegistry metrics;

  // Host-tagged concatenation of the per-shard JSONL traces in shard
  // order: each line gains leading "host" and "socket" fields. Stable
  // across job counts by construction.
  std::string MergedTrace() const;

  bool ok() const { return violations_total == 0; }
};

// The scenario / run options shard `shard` executes — exposed so tests can
// replay one shard standalone and require a byte-identical trace.
Scenario FleetShardScenario(const FleetConfig& config, uint32_t shard);
RunOptions FleetShardRunOptions(const FleetConfig& config, uint32_t shard);

// Runs the whole fleet, sharded across a dedicated thread pool, and merges
// the reports in shard order.
FleetResult RunFleet(const FleetConfig& config);

}  // namespace dcat

#endif  // SRC_FLEET_FLEET_H_
