// In-memory key/value store model (Redis + memtier proxy, Table 4).
//
// The paper loads 1M 128-byte records into Redis and drives concurrent GETs
// with memtier. The proxy lays records out as hash-bucket + value blocks in
// the VM's address space and serves GET requests: one bucket probe, a value
// copy (two cache lines), and per-request protocol/compute work. Key
// popularity is Zipfian, so a bigger LLC slice captures the hot set — the
// effect dCat exploits.
#ifndef SRC_WORKLOADS_KVSTORE_H_
#define SRC_WORKLOADS_KVSTORE_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/workloads/workload.h"
#include "src/workloads/zipf.h"

namespace dcat {

// Key popularity distribution, mirroring memtier_benchmark's --key-pattern.
enum class KeyPattern {
  kGaussian,  // memtier "G": keys near the center dominate; the hot set is
              // a few sigma wide — the regime where every extra cache way
              // captures measurably more of it (what Table 4 exercises)
  kZipfian,   // heavy-tailed popularity (YCSB-style)
};

struct KvStoreParams {
  uint64_t num_records = 1'000'000;
  uint32_t value_bytes = 128;
  KeyPattern pattern = KeyPattern::kGaussian;
  // Gaussian width in keys; 0 = num_records / 25 (a hot set of a few sigma
  // — larger than a contracted 4-way partition but well within the LLC, so
  // each extra way captures a measurable slice of it).
  uint64_t gaussian_sigma_keys = 0;
  double zipf_theta = 0.99;
  // Instructions of protocol parsing / response formatting per GET.
  uint32_t compute_per_request = 300;
  uint32_t num_vcpus = 2;
};

class KvStoreWorkload : public Workload {
 public:
  explicit KvStoreWorkload(KvStoreParams params = {}, uint64_t seed = 1);

  std::string name() const override { return "redis-kv"; }
  uint32_t num_vcpus() const override { return params_.num_vcpus; }
  void Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) override;
  void ResetMetrics() override;

  uint64_t requests_completed() const { return requests_; }
  double AvgRequestLatencyCycles() const { return latency_.Mean(); }
  double P99RequestLatencyCycles() const { return latency_.Percentile(0.99); }

 private:
  uint64_t BucketAddr(uint64_t key) const;
  uint64_t ValueAddr(uint64_t key) const;
  uint64_t NextKey();

  KvStoreParams params_;
  Rng rng_;
  ZipfGenerator zipf_;
  uint64_t sigma_keys_;
  uint64_t requests_ = 0;
  PercentileTracker latency_;
};

}  // namespace dcat

#endif  // SRC_WORKLOADS_KVSTORE_H_
