#include "src/workloads/trace.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/log.h"

namespace dcat {

bool ParseTrace(const std::string& text, std::vector<TraceRecord>* out, std::string* error) {
  out->clear();
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    if (const size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos) {
      continue;
    }
    const char kind = line[pos];
    const char* rest = line.c_str() + pos + 1;
    char* end = nullptr;
    const uint64_t value = std::strtoull(rest, &end, 0);  // base 0: dec or 0x-hex
    if (end == rest) {
      *error = "line " + std::to_string(line_number) + ": missing operand";
      return false;
    }
    TraceRecord record;
    record.value = value;
    switch (kind) {
      case 'R':
      case 'r':
        record.kind = TraceRecord::Kind::kRead;
        break;
      case 'W':
      case 'w':
        record.kind = TraceRecord::Kind::kWrite;
        break;
      case 'C':
      case 'c':
        record.kind = TraceRecord::Kind::kCompute;
        if (value == 0) {
          *error = "line " + std::to_string(line_number) + ": compute count must be positive";
          return false;
        }
        break;
      default:
        *error = "line " + std::to_string(line_number) + ": unknown record '" +
                 std::string(1, kind) + "'";
        return false;
    }
    out->push_back(record);
  }
  if (out->empty()) {
    *error = "trace contains no records";
    return false;
  }
  return true;
}

TraceWorkload::TraceWorkload(std::string name, std::vector<TraceRecord> records, uint32_t vcpus)
    : name_(std::move(name)), records_(std::move(records)), vcpus_(vcpus == 0 ? 1 : vcpus) {
  for (const TraceRecord& r : records_) {
    instructions_per_pass_ += r.kind == TraceRecord::Kind::kCompute ? r.value : 1;
  }
  cursor_.resize(vcpus_);
  compute_residual_.resize(vcpus_, 0);
  for (uint32_t v = 0; v < vcpus_; ++v) {
    cursor_[v] = records_.size() * v / vcpus_;  // spread start offsets
  }
}

std::unique_ptr<TraceWorkload> TraceWorkload::FromFile(const std::string& path, uint32_t vcpus) {
  std::ifstream in(path);
  if (!in) {
    DCAT_LOG(kError) << "trace file '" << path << "' not readable";
    return nullptr;
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  std::vector<TraceRecord> records;
  std::string error;
  if (!ParseTrace(text, &records, &error)) {
    DCAT_LOG(kError) << "trace file '" << path << "': " << error;
    return nullptr;
  }
  return std::make_unique<TraceWorkload>(path, std::move(records), vcpus);
}

void TraceWorkload::Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) {
  size_t& cursor = cursor_.at(vcpu);
  uint64_t& residual = compute_residual_.at(vcpu);
  uint64_t remaining = instructions;
  while (remaining > 0) {
    const TraceRecord& r = records_[cursor];
    switch (r.kind) {
      case TraceRecord::Kind::kRead:
        ctx.Read(r.value);
        --remaining;
        break;
      case TraceRecord::Kind::kWrite:
        ctx.Write(r.value);
        --remaining;
        break;
      case TraceRecord::Kind::kCompute: {
        // A big compute block may span scheduling quanta; remember how far
        // into it this vCPU got.
        const uint64_t left = r.value - residual;
        const uint64_t n = left < remaining ? left : remaining;
        ctx.Compute(n);
        remaining -= n;
        residual += n;
        if (residual < r.value) {
          return;  // quantum ended mid-block; resume here next time
        }
        residual = 0;
        break;
      }
    }
    if (++cursor == records_.size()) {
      cursor = 0;
      ++passes_;
    }
  }
}

}  // namespace dcat
