// The paper's internally-developed microbenchmarks: MLR, MLOAD, lookbusy.
//
//   MLR   — a stream of random 8-byte reads over an array (latency-bound,
//           no spatial locality; every read is an independent cache probe).
//   MLOAD — a stream of sequential reads over an array, wrapping around
//           (cyclic pattern: with a working set larger than the cache it
//           never re-hits, i.e. "streaming" in the paper's taxonomy).
//   lookbusy — burns CPU with negligible cache footprint (the "polite
//           neighbor" that donates its LLC ways).
#ifndef SRC_WORKLOADS_MICROBENCH_H_
#define SRC_WORKLOADS_MICROBENCH_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/workloads/workload.h"

namespace dcat {

// Common base for the two array-walking microbenchmarks: tracks the average
// data access latency that Figures 1, 8, 11 and 16 report.
class ArrayMicrobench : public Workload {
 public:
  ArrayMicrobench(uint64_t working_set_bytes, uint64_t seed);

  uint64_t working_set_bytes() const { return working_set_bytes_; }

  // Average access latency over the metric window, in cycles.
  double AvgAccessLatencyCycles() const { return latency_.mean(); }
  uint64_t AccessCount() const { return latency_.count(); }
  void ResetMetrics() override { latency_ = RunningStats(); }

  // Both array walkers repeat one access pattern forever — stationary by
  // construction, so the analytic fast path may model them indefinitely.
  uint64_t SteadyHorizon(uint32_t vcpu) const override {
    (void)vcpu;
    return kSteadyForever;
  }

 protected:
  // Each iteration is one 8-byte read plus `kComputePerAccess` ALU
  // instructions (address generation, loop overhead).
  static constexpr uint64_t kComputePerAccess = 2;
  static constexpr uint64_t kStride = 8;

  void RecordLatency(double cycles) { latency_.Add(cycles); }

  uint64_t working_set_bytes_;
  Rng rng_;

 private:
  RunningStats latency_;
};

// Random reads ("Memory Latency Random").
class MlrWorkload : public ArrayMicrobench {
 public:
  MlrWorkload(uint64_t working_set_bytes, uint64_t seed = 1);

  std::string name() const override;
  void Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) override;
};

// Sequential cyclic reads ("Memory LOAD").
class MloadWorkload : public ArrayMicrobench {
 public:
  MloadWorkload(uint64_t working_set_bytes, uint64_t seed = 1);

  std::string name() const override;
  void Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) override;
  void SkipInstructions(uint32_t vcpu, uint64_t instructions) override;

 private:
  uint64_t cursor_ = 0;
};

// CPU spinner with a tiny (4 KiB) data footprint.
class LookbusyWorkload : public Workload {
 public:
  explicit LookbusyWorkload(uint64_t seed = 1);

  std::string name() const override { return "lookbusy"; }
  void Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) override;
  uint64_t SteadyHorizon(uint32_t vcpu) const override {
    (void)vcpu;
    return kSteadyForever;  // one fixed spin loop, stationary forever
  }
  void SkipInstructions(uint32_t vcpu, uint64_t instructions) override;

 private:
  Rng rng_;
  uint64_t cursor_ = 0;
};

// An idle workload: consumes wall-clock without retiring instructions.
// Models a VM that has been provisioned but runs nothing (Fig. 7 before t1).
class IdleWorkload : public Workload {
 public:
  std::string name() const override { return "idle"; }
  void Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) override;
  uint64_t SteadyHorizon(uint32_t vcpu) const override {
    (void)vcpu;
    return kSteadyForever;  // never does anything; trivially stationary
  }
};

}  // namespace dcat

#endif  // SRC_WORKLOADS_MICROBENCH_H_
