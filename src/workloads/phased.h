// Composite workload that switches between sub-workloads over time.
//
// Drives the controller's phase-change machinery: each switch changes the
// memory-accesses-per-instruction signature, which dCat detects (>10% delta)
// and answers with a Reclaim. Also used to model "start -> run -> stop ->
// run again" (Fig. 12's performance-table fast path).
#ifndef SRC_WORKLOADS_PHASED_H_
#define SRC_WORKLOADS_PHASED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/workloads/workload.h"

namespace dcat {

class PhasedWorkload : public Workload {
 public:
  struct Phase {
    std::unique_ptr<Workload> workload;
    // How many instructions this phase runs before moving on. The last
    // phase repeats forever if `loop` is false; otherwise the schedule
    // cycles back to phase 0.
    uint64_t duration_instructions = 0;
  };

  PhasedWorkload(std::string name, bool loop = false);

  void AddPhase(std::unique_ptr<Workload> workload, uint64_t duration_instructions);

  std::string name() const override { return name_; }
  void Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) override;
  void ResetMetrics() override;

  // Steady until the current phase boundary: the remaining instructions of
  // this phase, capped by the inner workload's own horizon. The last phase
  // of a non-looping schedule runs forever.
  uint64_t SteadyHorizon(uint32_t vcpu) const override;
  // Advances phase accounting (and the inner workload's position) exactly
  // as Execute() would, without touching the cache model.
  void SkipInstructions(uint32_t vcpu, uint64_t instructions) override;

  // Index of the phase currently executing (test/inspection hook).
  size_t current_phase() const { return current_; }
  Workload& phase_workload(size_t i) { return *phases_.at(i).workload; }

 private:
  void Advance();

  std::string name_;
  bool loop_;
  std::vector<Phase> phases_;
  size_t current_ = 0;
  uint64_t executed_in_phase_ = 0;
};

}  // namespace dcat

#endif  // SRC_WORKLOADS_PHASED_H_
