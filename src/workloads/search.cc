#include "src/workloads/search.h"

namespace dcat {

SearchWorkload::SearchWorkload(SearchParams params, uint64_t seed)
    : params_(params),
      rng_(seed),
      doc_popularity_(params.num_docs, params.zipf_theta > 0 ? params.zipf_theta : 1e-9) {}

void SearchWorkload::Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) {
  (void)vcpu;
  const uint64_t doc_lines = (params_.doc_bytes + 63) / 64;
  const uint64_t mem_per_query = params_.dictionary_probes + 1 + doc_lines;
  const uint64_t per_query = mem_per_query + params_.compute_per_query;
  const uint64_t n = instructions / per_query;
  const uint64_t doc_base = params_.dictionary_bytes + params_.num_docs * 8;
  for (uint64_t i = 0; i < n; ++i) {
    double cycles = 0.0;
    // Term dictionary probes (hot, skewed toward common terms).
    for (uint32_t p = 0; p < params_.dictionary_probes; ++p) {
      const uint64_t term = rng_.Below(params_.dictionary_bytes / 64);
      cycles += ctx.Read(term * 64);
    }
    // Doc-id table entry, then the document body (Zipf-popular, YCSB-C).
    const uint64_t doc = doc_popularity_.Next(rng_);
    cycles += ctx.Read(params_.dictionary_bytes + doc * 8);
    for (uint64_t line = 0; line < doc_lines; ++line) {
      cycles += ctx.Read(doc_base + doc * params_.doc_bytes + line * 64);
    }
    ctx.Compute(params_.compute_per_query);
    cycles += 0.25 * static_cast<double>(params_.compute_per_query);
    latency_.Add(cycles);
    ++queries_;
  }
}

void SearchWorkload::ResetMetrics() {
  queries_ = 0;
  latency_ = PercentileTracker();
}

}  // namespace dcat
