#include "src/workloads/zipf.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dcat {

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  if (n == 0) {
    std::fprintf(stderr, "ZipfGenerator: n must be positive\n");
    std::abort();
  }
  zeta_n_ = Zeta(n, theta);
  zeta_theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta_theta_ / zeta_n_);
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zeta_n_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double k = static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t result = static_cast<uint64_t>(k);
  if (result >= n_) {
    result = n_ - 1;
  }
  return result;
}

}  // namespace dcat
