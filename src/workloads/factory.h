// Workload factory: builds workloads from compact spec strings.
//
// Used by the dcatd demo tool and handy for experiment scripts:
//   "mlr:8M"         MLR with an 8 MiB working set
//   "mload:60M"      MLOAD with a 60 MiB working set
//   "lookbusy"       compute-only spinner
//   "idle"           halted VM
//   "redis"          KV store model (Table 4 defaults)
//   "postgres"       relational DB model (Table 5 defaults)
//   "search"         search engine model (Table 6 defaults)
//   "spec:omnetpp"   a SPEC CPU2006 proxy by name
//   "trace:t.txt"    replay a memory-access trace file (src/workloads/trace.h)
#ifndef SRC_WORKLOADS_FACTORY_H_
#define SRC_WORKLOADS_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/workloads/workload.h"

namespace dcat {

// Parses a spec; returns nullptr (and logs) on malformed input.
std::unique_ptr<Workload> MakeWorkload(const std::string& spec, uint64_t seed = 1);

// The spec grammar's canonical examples, for --help output.
std::vector<std::string> WorkloadSpecExamples();

}  // namespace dcat

#endif  // SRC_WORKLOADS_FACTORY_H_
