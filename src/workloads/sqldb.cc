#include "src/workloads/sqldb.h"

namespace dcat {

SqlDbWorkload::SqlDbWorkload(SqlDbParams params, uint64_t seed) : params_(params), rng_(seed) {
  // Build the level map top-down: leaves hold `fanout` tuples each, inner
  // nodes hold `fanout` children. Stop when one node suffices.
  std::vector<uint64_t> nodes_per_level;  // leaf-first
  uint64_t nodes = (params_.num_tuples + params_.btree_fanout - 1) / params_.btree_fanout;
  nodes_per_level.push_back(nodes);
  while (nodes > 1) {
    nodes = (nodes + params_.btree_fanout - 1) / params_.btree_fanout;
    nodes_per_level.push_back(nodes);
  }
  // Lay out root-first in the address space so hot levels are compact.
  uint64_t base = 0;
  for (auto it = nodes_per_level.rbegin(); it != nodes_per_level.rend(); ++it) {
    level_base_.push_back(base);
    level_nodes_.push_back(*it);
    base += *it * params_.node_bytes;
  }
  heap_base_ = base;
}

void SqlDbWorkload::Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) {
  (void)vcpu;
  const uint64_t mem_per_txn =
      static_cast<uint64_t>(level_base_.size()) * params_.lines_touched_per_node + 2;
  const uint64_t per_txn = mem_per_txn + params_.compute_per_txn;
  const uint64_t n = instructions / per_txn;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t tuple = rng_.Below(params_.num_tuples);
    double cycles = 0.0;
    // Walk the index: at level l the node visited is tuple's ancestor.
    uint64_t divisor = 1;
    for (size_t l = level_base_.size(); l-- > 0;) {
      // ancestor index at this level (leaf level l = size-1 has divisor fanout)
      divisor *= params_.btree_fanout;
      const uint64_t node = tuple / divisor >= level_nodes_[l] ? level_nodes_[l] - 1
                                                               : tuple / divisor;
      const uint64_t node_addr =
          level_base_[l] + node * params_.node_bytes;
      for (uint32_t line = 0; line < params_.lines_touched_per_node; ++line) {
        // Binary search touches scattered lines within the node.
        const uint64_t offset = ((line * 37) % (params_.node_bytes / 64)) * 64;
        cycles += ctx.Read(node_addr + offset);
      }
    }
    // Heap fetch: the tuple itself (two lines for a 128B tuple).
    const uint64_t tuple_addr = heap_base_ + tuple * params_.tuple_bytes;
    cycles += ctx.Read(tuple_addr);
    cycles += ctx.Read(tuple_addr + 64);
    ctx.Compute(params_.compute_per_txn);
    cycles += 0.25 * static_cast<double>(params_.compute_per_txn);
    latency_.Add(cycles);
    ++transactions_;
  }
}

void SqlDbWorkload::ResetMetrics() {
  transactions_ = 0;
  latency_ = PercentileTracker();
}

}  // namespace dcat
