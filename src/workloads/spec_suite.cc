#include "src/workloads/spec_suite.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/units.h"

namespace dcat {

SpecProxyWorkload::SpecProxyWorkload(SpecProxyParams params, uint64_t seed)
    : params_(std::move(params)), rng_(seed) {
  if (params_.wss_bytes == 0 || params_.cwss_bytes == 0 ||
      params_.cwss_bytes > params_.wss_bytes) {
    std::fprintf(stderr, "SpecProxyWorkload %s: invalid working-set sizes\n",
                 params_.name.c_str());
    std::abort();
  }
  // Derive the compute:access ratio from the memory-per-instruction target:
  // each iteration issues 1 access + k compute, so mem/ins = 1/(1+k).
  const double k = 1.0 / std::max(params_.mem_per_instruction, 0.02) - 1.0;
  compute_per_access_ = static_cast<uint64_t>(std::llround(std::max(k, 0.0)));
}

void SpecProxyWorkload::Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) {
  (void)vcpu;
  constexpr uint64_t kStride = 8;
  const uint64_t per_iteration = 1 + compute_per_access_;
  const uint64_t n = instructions / per_iteration;
  const uint64_t hot_slots = params_.cwss_bytes / kStride;
  const uint64_t cold_bytes = params_.wss_bytes - params_.cwss_bytes;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t vaddr = 0;
    if (cold_bytes == 0 || rng_.NextDouble() < params_.hot_probability) {
      vaddr = rng_.Below(hot_slots) * kStride;
    } else if (params_.cold_pattern == AccessPattern::kSequential) {
      vaddr = params_.cwss_bytes + stream_cursor_;
      stream_cursor_ += kStride;
      if (stream_cursor_ >= cold_bytes) {
        stream_cursor_ = 0;
      }
    } else {
      vaddr = params_.cwss_bytes + rng_.Below(cold_bytes / kStride) * kStride;
    }
    ctx.Read(vaddr);
    ctx.Compute(compute_per_access_);
    ++iterations_;
  }
}

std::vector<SpecProxyParams> SpecCpu2006Roster() {
  // {name, WSS, CWSS, hot probability, cold pattern, mem/ins}
  // Classes: S = small WSS (donor), R = high-reuse medium/large (receiver),
  // T = streaming (classified Streaming by dCat), M = mixed.
  const auto R = AccessPattern::kRandom;
  const auto Q = AccessPattern::kSequential;
  return {
      {"perlbench", 1_MiB, 512_KiB, 0.90, R, 0.30},    // S
      {"bzip2", 8_MiB, 2_MiB, 0.70, Q, 0.28},          // M
      {"gcc", 20_MiB, 6_MiB, 0.65, R, 0.30},           // M/R
      {"mcf", 40_MiB, 10_MiB, 0.60, R, 0.40},          // R, huge WSS
      {"gobmk", 1_MiB, 512_KiB, 0.90, R, 0.25},        // S
      {"hmmer", 512_KiB, 256_KiB, 0.95, R, 0.35},      // S
      {"sjeng", 2_MiB, 1_MiB, 0.90, R, 0.22},          // S
      {"libquantum", 32_MiB, 64_KiB, 0.05, Q, 0.33},   // T
      {"h264ref", 2_MiB, 1_MiB, 0.85, Q, 0.30},        // S/M
      {"omnetpp", 12_MiB, 8_MiB, 0.90, R, 0.35},       // R, high CWSS/WSS
      {"astar", 10_MiB, 7_MiB, 0.90, R, 0.33},         // R, high CWSS/WSS
      {"xalancbmk", 6_MiB, 3_MiB, 0.80, R, 0.32},      // M
      {"milc", 24_MiB, 2_MiB, 0.30, Q, 0.35},          // T-ish
      {"namd", 1_MiB, 512_KiB, 0.90, R, 0.25},         // S
      {"soplex", 16_MiB, 6_MiB, 0.75, R, 0.38},        // R
      {"povray", 512_KiB, 256_KiB, 0.95, R, 0.20},     // S
      {"lbm", 60_MiB, 64_KiB, 0.02, Q, 0.40},          // T
      {"sphinx3", 8_MiB, 4_MiB, 0.80, R, 0.33},        // R
      {"GemsFDTD", 24_MiB, 1_MiB, 0.20, Q, 0.38},      // T
      {"leslie3d", 20_MiB, 2_MiB, 0.30, Q, 0.36},      // T-ish
  };
}

SpecProxyParams SpecParamsByName(const std::string& name) {
  const auto roster = SpecCpu2006Roster();
  const auto it = std::find_if(roster.begin(), roster.end(),
                               [&name](const SpecProxyParams& p) { return p.name == name; });
  if (it == roster.end()) {
    std::fprintf(stderr, "SpecParamsByName: unknown benchmark '%s'\n", name.c_str());
    std::abort();
  }
  return *it;
}

}  // namespace dcat
