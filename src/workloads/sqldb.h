// Relational database model (PostgreSQL + pgbench proxy, Table 5).
//
// pgbench's select-only mode reads one uniformly random tuple per
// transaction through a B-tree index. The proxy models the B-tree levels
// over a 10M-tuple table: the root and second level are hot; the third
// (inner) level is a ~10 MB cacheable middle that a larger LLC share
// captures; leaves and heap tuples are a cold uniform tail. Uniform tuple
// choice is why the paper's PostgreSQL gains are modest (~5.7% TPS): only
// the index's cacheable layers benefit — the proxy reproduces that ceiling.
#ifndef SRC_WORKLOADS_SQLDB_H_
#define SRC_WORKLOADS_SQLDB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/workloads/workload.h"

namespace dcat {

struct SqlDbParams {
  uint64_t num_tuples = 10'000'000;
  uint32_t tuple_bytes = 128;
  uint32_t btree_fanout = 64;
  uint32_t node_bytes = 4096;  // index node = one page, a few lines touched
  uint32_t lines_touched_per_node = 3;  // binary search touches ~log lines
  uint32_t compute_per_txn = 1200;  // parse/plan/execute overhead
  uint32_t num_vcpus = 2;
};

class SqlDbWorkload : public Workload {
 public:
  explicit SqlDbWorkload(SqlDbParams params = {}, uint64_t seed = 1);

  std::string name() const override { return "postgres-select"; }
  uint32_t num_vcpus() const override { return params_.num_vcpus; }
  void Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) override;
  void ResetMetrics() override;

  uint64_t transactions() const { return transactions_; }
  double AvgTxnLatencyCycles() const { return latency_.Mean(); }

  // Number of B-tree levels (root inclusive) for the configured table.
  uint32_t num_levels() const { return static_cast<uint32_t>(level_base_.size()); }

 private:
  SqlDbParams params_;
  Rng rng_;
  // level_base_[l] = virtual base address of level l (0 = root).
  std::vector<uint64_t> level_base_;
  std::vector<uint64_t> level_nodes_;
  uint64_t heap_base_ = 0;
  uint64_t transactions_ = 0;
  PercentileTracker latency_;
};

}  // namespace dcat

#endif  // SRC_WORKLOADS_SQLDB_H_
