#include "src/workloads/factory.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/log.h"
#include "src/common/strings.h"
#include "src/common/units.h"
#include "src/workloads/kvstore.h"
#include "src/workloads/microbench.h"
#include "src/workloads/search.h"
#include "src/workloads/spec_suite.h"
#include "src/workloads/sqldb.h"
#include "src/workloads/trace.h"

namespace dcat {
namespace {

// Parses "8M" / "512K" / "1G" / "4096" (bytes) size suffixes.
bool ParseSize(const std::string& text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value <= 0) {
    return false;
  }
  uint64_t multiplier = 1;
  switch (*end) {
    case '\0':
      break;
    case 'k':
    case 'K':
      multiplier = kKiB;
      break;
    case 'm':
    case 'M':
      multiplier = kMiB;
      break;
    case 'g':
    case 'G':
      multiplier = kGiB;
      break;
    default:
      return false;
  }
  *out = static_cast<uint64_t>(value * static_cast<double>(multiplier));
  return *out > 0;
}

bool SpecExists(const std::string& name) {
  const auto roster = SpecCpu2006Roster();
  return std::any_of(roster.begin(), roster.end(),
                     [&name](const SpecProxyParams& p) { return p.name == name; });
}

}  // namespace

std::unique_ptr<Workload> MakeWorkload(const std::string& spec, uint64_t seed) {
  // "<kind>[:<arg>]"; the arg may itself contain ':' (e.g. trace paths).
  const auto [kind, arg] = SplitFirst(spec, ':');

  if (kind == "mlr" || kind == "mload") {
    uint64_t wss = 0;
    if (!ParseSize(arg, &wss)) {
      DCAT_LOG(kError) << "workload spec '" << spec << "': bad working-set size";
      return nullptr;
    }
    if (kind == "mlr") {
      return std::make_unique<MlrWorkload>(wss, seed);
    }
    return std::make_unique<MloadWorkload>(wss, seed);
  }
  if (kind == "lookbusy") {
    return std::make_unique<LookbusyWorkload>(seed);
  }
  if (kind == "idle") {
    return std::make_unique<IdleWorkload>();
  }
  if (kind == "redis") {
    return std::make_unique<KvStoreWorkload>(KvStoreParams{}, seed);
  }
  if (kind == "postgres") {
    return std::make_unique<SqlDbWorkload>(SqlDbParams{}, seed);
  }
  if (kind == "search") {
    return std::make_unique<SearchWorkload>(SearchParams{}, seed);
  }
  if (kind == "trace") {
    return TraceWorkload::FromFile(arg);
  }
  if (kind == "spec") {
    if (!SpecExists(arg)) {
      DCAT_LOG(kError) << "workload spec '" << spec << "': unknown SPEC benchmark";
      return nullptr;
    }
    return std::make_unique<SpecProxyWorkload>(SpecParamsByName(arg), seed);
  }
  DCAT_LOG(kError) << "workload spec '" << spec << "': unknown kind";
  return nullptr;
}

std::vector<std::string> WorkloadSpecExamples() {
  return {"mlr:8M",    "mload:60M", "lookbusy",      "idle",
          "redis",     "postgres",  "search",        "spec:omnetpp"};
}

}  // namespace dcat
