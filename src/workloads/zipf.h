// Zipfian distribution generator (YCSB-style).
//
// Used by the cloud application models: key popularity in the Redis-like
// store follows a Zipf distribution, which is what gives a larger cache
// allocation its value (the hot set fits).
#ifndef SRC_WORKLOADS_ZIPF_H_
#define SRC_WORKLOADS_ZIPF_H_

#include <cstdint>

#include "src/common/rng.h"

namespace dcat {

// Draws values in [0, n) with P(k) proportional to 1/(k+1)^theta.
// Implementation follows Gray et al. ("Quickly generating billion-record
// synthetic databases"), the same algorithm YCSB uses.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta = 0.99);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zeta_n_;
  double eta_;
  double zeta_theta_;  // zeta(2, theta)
};

}  // namespace dcat

#endif  // SRC_WORKLOADS_ZIPF_H_
