// Search engine model (Elasticsearch + YCSB workload-C proxy, Table 6).
//
// YCSB workload C issues 100% reads over 100K 1 KiB records with the
// suite's default Zipfian request distribution — the hot head of the
// corpus is what a larger LLC share captures. The proxy models a
// term-dictionary probe (small, hot), a document-id lookup in a doc
// table, and the 1 KiB document fetch (16 cache lines), plus
// scoring/serialization compute. The paper reports average and
// 99th-percentile latency, so the proxy tracks a full distribution.
#ifndef SRC_WORKLOADS_SEARCH_H_
#define SRC_WORKLOADS_SEARCH_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/workloads/workload.h"
#include "src/workloads/zipf.h"

namespace dcat {

struct SearchParams {
  uint64_t num_docs = 100'000;
  uint32_t doc_bytes = 1024;
  // YCSB default request distribution is Zipfian; theta 0 degrades to
  // (nearly) uniform for sensitivity studies.
  double zipf_theta = 0.99;
  uint64_t dictionary_bytes = 2 * 1024 * 1024;  // hot term dictionary
  uint32_t dictionary_probes = 4;
  uint32_t compute_per_query = 2000;  // scoring + JSON serialization
  uint32_t num_vcpus = 2;
};

class SearchWorkload : public Workload {
 public:
  explicit SearchWorkload(SearchParams params = {}, uint64_t seed = 1);

  std::string name() const override { return "elasticsearch-ycsbc"; }
  uint32_t num_vcpus() const override { return params_.num_vcpus; }
  void Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) override;
  void ResetMetrics() override;

  uint64_t queries() const { return queries_; }
  double AvgQueryLatencyCycles() const { return latency_.Mean(); }
  double P99QueryLatencyCycles() const { return latency_.Percentile(0.99); }

 private:
  SearchParams params_;
  Rng rng_;
  ZipfGenerator doc_popularity_;
  uint64_t queries_ = 0;
  PercentileTracker latency_;
};

}  // namespace dcat

#endif  // SRC_WORKLOADS_SEARCH_H_
