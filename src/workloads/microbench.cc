#include "src/workloads/microbench.h"

#include <cstdio>

#include "src/common/units.h"

namespace dcat {

ArrayMicrobench::ArrayMicrobench(uint64_t working_set_bytes, uint64_t seed)
    : working_set_bytes_(working_set_bytes), rng_(seed) {}

MlrWorkload::MlrWorkload(uint64_t working_set_bytes, uint64_t seed)
    : ArrayMicrobench(working_set_bytes, seed) {}

std::string MlrWorkload::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "MLR-%lluMB",
                static_cast<unsigned long long>(working_set_bytes_ / kMiB));
  return buf;
}

void MlrWorkload::Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) {
  (void)vcpu;
  const uint64_t slots = working_set_bytes_ / kStride;
  const uint64_t iterations = instructions / (1 + kComputePerAccess);
  for (uint64_t i = 0; i < iterations; ++i) {
    const uint64_t vaddr = rng_.Below(slots) * kStride;
    RecordLatency(ctx.Read(vaddr));
    ctx.Compute(kComputePerAccess);
  }
}

MloadWorkload::MloadWorkload(uint64_t working_set_bytes, uint64_t seed)
    : ArrayMicrobench(working_set_bytes, seed) {}

std::string MloadWorkload::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "MLOAD-%lluMB",
                static_cast<unsigned long long>(working_set_bytes_ / kMiB));
  return buf;
}

void MloadWorkload::Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) {
  (void)vcpu;
  const uint64_t iterations = instructions / (1 + kComputePerAccess);
  for (uint64_t i = 0; i < iterations; ++i) {
    RecordLatency(ctx.Read(cursor_));
    ctx.Compute(kComputePerAccess);
    cursor_ += kStride;
    if (cursor_ >= working_set_bytes_) {
      cursor_ = 0;
    }
  }
}

void MloadWorkload::SkipInstructions(uint32_t vcpu, uint64_t instructions) {
  (void)vcpu;
  // Mirror Execute()'s cursor arithmetic so a fallback to line-level
  // simulation resumes the sequential sweep where it would have been.
  const uint64_t iterations = instructions / (1 + kComputePerAccess);
  const uint64_t slots = working_set_bytes_ / kStride;
  if (slots > 0) {
    cursor_ = ((cursor_ / kStride + iterations) % slots) * kStride;
  }
}

LookbusyWorkload::LookbusyWorkload(uint64_t seed) : rng_(seed) {}

void LookbusyWorkload::Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) {
  (void)vcpu;
  // ~1 memory access per 100 instructions, confined to one 4 KiB page:
  // negligible LLC pressure, matching the paper's lookbusy neighbors.
  constexpr uint64_t kComputeChunk = 99;
  uint64_t remaining = instructions;
  while (remaining >= kComputeChunk + 1) {
    ctx.Compute(kComputeChunk);
    ctx.Read((cursor_ * 64) % 4_KiB);
    ++cursor_;
    remaining -= kComputeChunk + 1;
  }
  if (remaining > 0) {
    ctx.Compute(remaining);
  }
}

void LookbusyWorkload::SkipInstructions(uint32_t vcpu, uint64_t instructions) {
  (void)vcpu;
  cursor_ += instructions / 100;  // one touched line per 100 instructions
}

void IdleWorkload::Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) {
  (void)vcpu;
  // Convert the instruction budget into halted cycles so the interval's
  // wall-clock still elapses for this core.
  ctx.core().Idle(static_cast<double>(instructions) * 0.25);
}

}  // namespace dcat
