// Workload interface for the socket simulator.
//
// A workload is what a tenant runs inside a VM: it issues virtual-address
// memory accesses and compute instructions against an ExecutionContext.
// Workloads are black boxes to the dCat controller — the controller sees
// only perf counters — but they expose application-level metrics (latency,
// throughput) to the experiment harness, mirroring how the paper measures
// "from the application side".
#ifndef SRC_WORKLOADS_WORKLOAD_H_
#define SRC_WORKLOADS_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "src/sim/execution_context.h"

namespace dcat {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  // Number of vCPUs the workload wants; the harness provides one
  // ExecutionContext per vCPU, all sharing the VM's page table.
  virtual uint32_t num_vcpus() const { return 1; }

  // Runs approximately `instructions` instructions of vCPU `vcpu`.
  // Implementations should come close; exactness is not required (the
  // harness drives cores by cycle budget, not instruction quota).
  virtual void Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) = 0;

  // Clears application-level metrics (not the simulated state).
  virtual void ResetMetrics() {}

  // --- hybrid-fidelity cooperation (src/sim/analytic_model.h) ---

  // Sentinel horizon for stationary workloads whose access pattern never
  // changes (the analytic fast path may model them indefinitely).
  static constexpr uint64_t kSteadyForever = UINT64_MAX;

  // How many more instructions this vCPU will execute before its access
  // pattern could change (a phase boundary, a mode switch, end of input).
  // The hybrid-fidelity engine only models a tenant analytically while the
  // horizon comfortably exceeds one interval. The conservative default —
  // 0, "could change any instruction" — keeps workloads that do not opt in
  // on the line-level model forever.
  virtual uint64_t SteadyHorizon(uint32_t vcpu) const {
    (void)vcpu;
    return 0;
  }

  // Advances the workload's position by `instructions` without touching the
  // cache model — the analytic fast path's replacement for Execute(). Must
  // keep phase accounting consistent with what Execute() would have done,
  // so a later fallback to line-level simulation resumes in the right
  // phase. Only called for instruction counts within SteadyHorizon().
  virtual void SkipInstructions(uint32_t vcpu, uint64_t instructions) {
    (void)vcpu;
    (void)instructions;
  }
};

}  // namespace dcat

#endif  // SRC_WORKLOADS_WORKLOAD_H_
