// Workload interface for the socket simulator.
//
// A workload is what a tenant runs inside a VM: it issues virtual-address
// memory accesses and compute instructions against an ExecutionContext.
// Workloads are black boxes to the dCat controller — the controller sees
// only perf counters — but they expose application-level metrics (latency,
// throughput) to the experiment harness, mirroring how the paper measures
// "from the application side".
#ifndef SRC_WORKLOADS_WORKLOAD_H_
#define SRC_WORKLOADS_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "src/sim/execution_context.h"

namespace dcat {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  // Number of vCPUs the workload wants; the harness provides one
  // ExecutionContext per vCPU, all sharing the VM's page table.
  virtual uint32_t num_vcpus() const { return 1; }

  // Runs approximately `instructions` instructions of vCPU `vcpu`.
  // Implementations should come close; exactness is not required (the
  // harness drives cores by cycle budget, not instruction quota).
  virtual void Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) = 0;

  // Clears application-level metrics (not the simulated state).
  virtual void ResetMetrics() {}
};

}  // namespace dcat

#endif  // SRC_WORKLOADS_WORKLOAD_H_
