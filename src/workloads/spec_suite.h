// Synthetic SPEC CPU2006 proxies.
//
// The paper evaluates 20 (single-threaded) SPEC CPU2006 subtests whose cache
// behaviour spans the design space: small working sets (cache-insensitive
// donors), high-reuse medium/large working sets (dCat's receivers — e.g.
// omnetpp, astar with high CWSS/WSS ratio), and streaming codes (lbm,
// libquantum). SPEC itself is proprietary, so each subtest is replaced by a
// parameterized proxy with the working-set size and reuse characteristics
// reported in the characterization studies the paper cites (Jaleel 2007,
// Gove 2007). The parameters are not calibrated to cycle accuracy; they
// preserve each benchmark's qualitative class, which is what Fig. 17 and
// Table 3 exercise.
#ifndef SRC_WORKLOADS_SPEC_SUITE_H_
#define SRC_WORKLOADS_SPEC_SUITE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/workloads/workload.h"

namespace dcat {

enum class AccessPattern {
  kRandom,      // uniform random over the region
  kSequential,  // streaming scan, wraps around
};

struct SpecProxyParams {
  std::string name;
  // Total working-set size (bytes) and the hot "core working set" the
  // benchmark re-references frequently (CWSS in the paper's terminology).
  uint64_t wss_bytes = 0;
  uint64_t cwss_bytes = 0;
  // Probability an access lands in the hot region (reuse intensity).
  double hot_probability = 0.8;
  AccessPattern cold_pattern = AccessPattern::kRandom;
  // Memory accesses per instruction (l1_ref/ret_ins signature).
  double mem_per_instruction = 0.3;
};

class SpecProxyWorkload : public Workload {
 public:
  SpecProxyWorkload(SpecProxyParams params, uint64_t seed = 1);

  const SpecProxyParams& params() const { return params_; }

  std::string name() const override { return params_.name; }
  void Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) override;

  // Application progress: iterations completed (inverse of SPEC run time).
  uint64_t iterations() const { return iterations_; }
  void ResetMetrics() override { iterations_ = 0; }

 private:
  SpecProxyParams params_;
  Rng rng_;
  uint64_t stream_cursor_ = 0;
  uint64_t iterations_ = 0;
  uint64_t compute_per_access_ = 1;
};

// The 20-benchmark roster used by bench_fig17_spec_suite. Parameters encode
// published working-set/reuse classes; see the table in spec_suite.cc.
std::vector<SpecProxyParams> SpecCpu2006Roster();

// Finds a roster entry by name; aborts if absent (programming error).
SpecProxyParams SpecParamsByName(const std::string& name);

}  // namespace dcat

#endif  // SRC_WORKLOADS_SPEC_SUITE_H_
