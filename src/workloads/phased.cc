#include "src/workloads/phased.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dcat {

PhasedWorkload::PhasedWorkload(std::string name, bool loop) : name_(std::move(name)), loop_(loop) {}

void PhasedWorkload::AddPhase(std::unique_ptr<Workload> workload,
                              uint64_t duration_instructions) {
  if (workload->num_vcpus() != 1) {
    std::fprintf(stderr, "PhasedWorkload: only single-vCPU phases supported\n");
    std::abort();
  }
  phases_.push_back(Phase{std::move(workload), duration_instructions});
}

void PhasedWorkload::Advance() {
  if (current_ + 1 < phases_.size()) {
    ++current_;
  } else if (loop_) {
    current_ = 0;
  }
  executed_in_phase_ = 0;
}

void PhasedWorkload::Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) {
  if (phases_.empty()) {
    ctx.Compute(instructions);
    return;
  }
  uint64_t remaining = instructions;
  while (remaining > 0) {
    Phase& phase = phases_[current_];
    const bool is_last_nonloop = !loop_ && current_ + 1 == phases_.size();
    uint64_t chunk = remaining;
    if (!is_last_nonloop && phase.duration_instructions > 0) {
      const uint64_t left_in_phase = phase.duration_instructions > executed_in_phase_
                                         ? phase.duration_instructions - executed_in_phase_
                                         : 0;
      chunk = std::min(remaining, left_in_phase);
      if (chunk == 0) {
        Advance();
        continue;
      }
    }
    phase.workload->Execute(ctx, vcpu, chunk);
    executed_in_phase_ += chunk;
    remaining -= chunk;
  }
}

uint64_t PhasedWorkload::SteadyHorizon(uint32_t vcpu) const {
  if (phases_.empty()) {
    return kSteadyForever;  // pure compute filler, stationary
  }
  const Phase& phase = phases_[current_];
  const uint64_t inner = phase.workload->SteadyHorizon(vcpu);
  const bool is_last_nonloop = !loop_ && current_ + 1 == phases_.size();
  if (is_last_nonloop || phase.duration_instructions == 0) {
    return inner;
  }
  const uint64_t left_in_phase = phase.duration_instructions > executed_in_phase_
                                     ? phase.duration_instructions - executed_in_phase_
                                     : 0;
  return std::min(inner, left_in_phase);
}

void PhasedWorkload::SkipInstructions(uint32_t vcpu, uint64_t instructions) {
  if (phases_.empty()) {
    return;
  }
  uint64_t remaining = instructions;
  while (remaining > 0) {
    Phase& phase = phases_[current_];
    const bool is_last_nonloop = !loop_ && current_ + 1 == phases_.size();
    uint64_t chunk = remaining;
    if (!is_last_nonloop && phase.duration_instructions > 0) {
      const uint64_t left_in_phase = phase.duration_instructions > executed_in_phase_
                                         ? phase.duration_instructions - executed_in_phase_
                                         : 0;
      chunk = std::min(remaining, left_in_phase);
      if (chunk == 0) {
        Advance();
        continue;
      }
    }
    phase.workload->SkipInstructions(vcpu, chunk);
    executed_in_phase_ += chunk;
    remaining -= chunk;
  }
}

void PhasedWorkload::ResetMetrics() {
  for (Phase& phase : phases_) {
    phase.workload->ResetMetrics();
  }
}

}  // namespace dcat
