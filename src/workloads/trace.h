// Trace-replay workload.
//
// Replays a memory-access trace captured elsewhere (e.g. with Pin or perf
// mem) so real application behaviour can be pushed through the simulator
// and the controller. Text format, one record per line:
//
//     R <vaddr>     read at virtual address (decimal or 0x-hex)
//     W <vaddr>     write at virtual address
//     C <count>     <count> non-memory instructions
//     # comment
//
// The trace is replayed cyclically — a finite capture stands in for a
// steady-state workload. Multi-vCPU replay shares the trace; each vCPU
// starts at an offset stride so the cores do not run in lockstep.
#ifndef SRC_WORKLOADS_TRACE_H_
#define SRC_WORKLOADS_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/workloads/workload.h"

namespace dcat {

struct TraceRecord {
  enum class Kind : uint8_t { kRead, kWrite, kCompute };
  Kind kind = Kind::kRead;
  uint64_t value = 0;  // address for R/W, instruction count for C
};

// Parses trace text; returns false and sets `error` on the first bad line.
bool ParseTrace(const std::string& text, std::vector<TraceRecord>* out, std::string* error);

class TraceWorkload : public Workload {
 public:
  TraceWorkload(std::string name, std::vector<TraceRecord> records, uint32_t vcpus = 1);

  // Loads from a file; returns nullptr and logs on failure.
  static std::unique_ptr<TraceWorkload> FromFile(const std::string& path, uint32_t vcpus = 1);

  std::string name() const override { return name_; }
  uint32_t num_vcpus() const override { return vcpus_; }
  void Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) override;

  size_t trace_length() const { return records_.size(); }
  // Total instructions one full pass of the trace retires.
  uint64_t instructions_per_pass() const { return instructions_per_pass_; }
  // Completed full passes across all vCPUs (application progress metric).
  uint64_t passes() const { return passes_; }
  void ResetMetrics() override { passes_ = 0; }

 private:
  std::string name_;
  std::vector<TraceRecord> records_;
  uint32_t vcpus_;
  uint64_t instructions_per_pass_ = 0;
  std::vector<size_t> cursor_;  // per-vCPU position in the trace
  std::vector<uint64_t> compute_residual_;  // progress within a compute block
  uint64_t passes_ = 0;
};

}  // namespace dcat

#endif  // SRC_WORKLOADS_TRACE_H_
