#include "src/workloads/kvstore.h"

#include <algorithm>
#include <cmath>

namespace dcat {
namespace {

// Hash-table region: one 64-byte bucket per record, then the value heap.
constexpr uint64_t kBucketBytes = 64;

// Fibonacci hash spreads sequential keys across buckets like a real table.
uint64_t HashKey(uint64_t key) { return key * 0x9e3779b97f4a7c15ULL; }

}  // namespace

KvStoreWorkload::KvStoreWorkload(KvStoreParams params, uint64_t seed)
    : params_(params),
      rng_(seed),
      zipf_(params.num_records, params.zipf_theta),
      sigma_keys_(params.gaussian_sigma_keys != 0 ? params.gaussian_sigma_keys
                                                  : std::max<uint64_t>(params.num_records / 25, 1)) {}

uint64_t KvStoreWorkload::NextKey() {
  if (params_.pattern == KeyPattern::kZipfian) {
    return zipf_.Next(rng_);
  }
  // Gaussian around the middle of the key space (Box-Muller), clamped.
  const double u1 = std::max(rng_.NextDouble(), 1e-12);
  const double u2 = rng_.NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  const double center = static_cast<double>(params_.num_records) / 2.0;
  double key = center + z * static_cast<double>(sigma_keys_);
  if (key < 0.0) {
    key = 0.0;
  }
  if (key >= static_cast<double>(params_.num_records)) {
    key = static_cast<double>(params_.num_records - 1);
  }
  return static_cast<uint64_t>(key);
}

uint64_t KvStoreWorkload::BucketAddr(uint64_t key) const {
  return (HashKey(key) % params_.num_records) * kBucketBytes;
}

uint64_t KvStoreWorkload::ValueAddr(uint64_t key) const {
  const uint64_t heap_base = params_.num_records * kBucketBytes;
  return heap_base + key * params_.value_bytes;
}

void KvStoreWorkload::Execute(ExecutionContext& ctx, uint32_t vcpu, uint64_t instructions) {
  (void)vcpu;
  const uint64_t lines_per_value = (params_.value_bytes + 63) / 64;
  const uint64_t per_request = 1 + lines_per_value + params_.compute_per_request;
  const uint64_t n = instructions / per_request;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t key = NextKey();
    double cycles = 0.0;
    cycles += ctx.Read(BucketAddr(key));
    for (uint64_t line = 0; line < lines_per_value; ++line) {
      cycles += ctx.Read(ValueAddr(key) + line * 64);
    }
    ctx.Compute(params_.compute_per_request);
    cycles += 0.25 * static_cast<double>(params_.compute_per_request);
    latency_.Add(cycles);
    ++requests_;
  }
}

void KvStoreWorkload::ResetMetrics() {
  requests_ = 0;
  latency_ = PercentileTracker();
}

}  // namespace dcat
