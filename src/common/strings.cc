#include "src/common/strings.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace dcat {

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::pair<std::string, std::string> SplitFirst(const std::string& text, char sep) {
  const size_t pos = text.find(sep);
  if (pos == std::string::npos) {
    return {text, ""};
  }
  return {text.substr(0, pos), text.substr(pos + 1)};
}

std::string Trim(const std::string& text) {
  const size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) {
    return "";
  }
  const size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

bool ParseUint64(const std::string& text, uint64_t* out) {
  // strtoull silently skips leading whitespace and accepts signs; ban both.
  if (text.empty() || !(text[0] >= '0' && text[0] <= '9')) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return false;
  }
  *out = static_cast<uint64_t>(value);
  return true;
}

bool ParseUint32(const std::string& text, uint32_t* out) {
  uint64_t wide = 0;
  if (!ParseUint64(text, &wide) || wide > std::numeric_limits<uint32_t>::max()) {
    return false;
  }
  *out = static_cast<uint32_t>(wide);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace dcat
