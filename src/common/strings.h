// Small string utilities shared by the CLI, config, and workload parsers.
//
// Every user-facing parser in the tree (dcatd flags, dcat.conf, workload
// specs, schedules) splits on single-character separators and converts
// number-like fields; this header is the one copy of that logic. The Parse*
// helpers are strict: trailing garbage ("12abc") and empty strings fail
// instead of silently truncating the way std::atoi does.
#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dcat {

// Splits on every occurrence of `sep`. "a,,b" -> {"a", "", "b"}; the empty
// string yields {""} (one empty field), matching the usual CSV convention.
std::vector<std::string> Split(const std::string& text, char sep);

// Splits at the first occurrence of `sep` only: "trace:a:b" -> {"trace",
// "a:b"}. When `sep` is absent the second element is empty.
std::pair<std::string, std::string> SplitFirst(const std::string& text, char sep);

// Strips leading/trailing spaces, tabs and carriage returns.
std::string Trim(const std::string& text);

// Strict decimal parsers: the whole string must be consumed, no sign for the
// unsigned variants. Return false (leaving *out untouched) on any garbage.
bool ParseUint64(const std::string& text, uint64_t* out);
bool ParseUint32(const std::string& text, uint32_t* out);
bool ParseDouble(const std::string& text, double* out);

}  // namespace dcat

#endif  // SRC_COMMON_STRINGS_H_
