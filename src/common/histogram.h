// Fixed-bucket integer histogram.
//
// Used for the Figure 3 experiment (how many cache lines map to each set)
// and for latency bucketing in the workload models.
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dcat {

class Histogram {
 public:
  // Buckets are [0, 1, ..., num_buckets-2, overflow]; values >= num_buckets-1
  // land in the last (overflow) bucket.
  explicit Histogram(size_t num_buckets);

  void Add(uint64_t value, uint64_t count = 1);

  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket(size_t i) const { return counts_.at(i); }
  uint64_t total() const { return total_; }

  // Fraction of observations in bucket i (0 when empty).
  double Fraction(size_t i) const;
  // Fraction of observations with value >= threshold (capped at overflow).
  double FractionAtLeast(uint64_t threshold) const;

  // Multi-line "bucket count fraction" rendering for benchmark output.
  std::string ToString() const;

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace dcat

#endif  // SRC_COMMON_HISTOGRAM_H_
