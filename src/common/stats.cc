#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace dcat {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PercentileTracker::Percentile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples_.begin(), samples_.end());
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

double PercentileTracker::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace dcat
