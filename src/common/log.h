// Minimal leveled logging for the dCat daemon and tools.
//
// The controller is a long-lived daemon in the paper; operational visibility
// matters. This logger is intentionally tiny: synchronous, line-oriented,
// writes to stderr, filterable by level, and silenceable in unit tests.
#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace dcat {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Global minimum level; messages below it are dropped. Defaults to kWarning
// so library users are not spammed; tools raise it to kInfo/kDebug.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line ("[LEVEL] file:line: message") if enabled.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

// Stream-style helper: LogLine(LogLevel::kInfo, __FILE__, __LINE__) << "x=" << x;
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace dcat

#define DCAT_LOG(level) ::dcat::LogLine(::dcat::LogLevel::level, __FILE__, __LINE__)

#endif  // SRC_COMMON_LOG_H_
