// Size and time unit helpers shared across the dCat codebase.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>

namespace dcat {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// Convenience user-defined literals: 8_MiB, 45_MiB, 4_KiB ...
constexpr uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }

}  // namespace dcat

#endif  // SRC_COMMON_UNITS_H_
