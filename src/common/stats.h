// Small statistics helpers used by the experiment harness and benchmarks.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dcat {

// Streaming mean/variance (Welford). O(1) memory, numerically stable.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  // Sample variance / stddev; zero with fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Reservoir of samples supporting exact percentiles. Used for latency
// distributions (e.g. the Elasticsearch p99 in Table 6).
class PercentileTracker {
 public:
  void Add(double x) { samples_.push_back(x); }
  size_t count() const { return samples_.size(); }
  // q in [0, 1]; 0.99 == p99. Linear interpolation between order statistics.
  // Returns 0 when empty.
  double Percentile(double q) const;
  double Mean() const;

 private:
  mutable std::vector<double> samples_;
};

// Geometric mean of strictly positive values; returns 0 for empty input.
double GeometricMean(const std::vector<double>& values);

}  // namespace dcat

#endif  // SRC_COMMON_STATS_H_
