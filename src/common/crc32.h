// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used to frame decision
// journal records. Table-driven, byte-at-a-time; fast enough for the
// journal's record sizes and has no dependencies.
#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace dcat {

// CRC of `length` bytes starting at `data`, seeded with `seed` (pass the
// previous return value to continue a running CRC across buffers).
uint32_t Crc32(const void* data, size_t length, uint32_t seed = 0);

}  // namespace dcat

#endif  // SRC_COMMON_CRC32_H_
