// Fixed-size worker pool with a blocking ParallelFor.
//
// Built for the scenario engine: bench cells, fuzz seeds and throughput
// shards are embarrassingly parallel, each owning its whole simulation
// state (Socket, Host, RNGs), so the pool only has to hand out indices.
// Determinism rule: tasks must not share mutable state or draw from a
// common RNG — each index derives everything it needs from its own seed,
// and callers merge results by index so output order never depends on
// scheduling.
//
// Semantics:
//   * ParallelFor(begin, end, fn) runs fn(i) for every i in [begin, end)
//     and blocks until all complete. The calling thread participates.
//   * The first exception thrown by any fn is rethrown on the caller
//     after the whole range finishes; later exceptions are dropped.
//   * Nested ParallelFor (calling it from inside a task) throws
//     std::logic_error — the pool is fixed-size and nesting would
//     deadlock it. Parallelize at one level only.
//   * An empty range is a no-op; a single-thread pool runs inline.
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dcat {

class ThreadPool {
 public:
  // `num_threads` counts the caller too: N means the caller plus N-1
  // workers. 0 picks DefaultJobs().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size() + 1; }

  void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& fn);

  // Chunked variant for fine-grained loops: splits [begin, end) into
  // contiguous runs of at most `grain` indices and hands the pool one item
  // per run, so per-item dispatch cost is amortized over `grain` calls of
  // `fn`. Semantics otherwise identical to ParallelFor (blocking, caller
  // participates, first exception rethrown). `grain` 0 behaves like 1.
  void ParallelForChunked(size_t begin, size_t end, size_t grain,
                          const std::function<void(size_t)>& fn);

  // DCAT_JOBS environment override, else std::thread::hardware_concurrency
  // (min 1).
  static size_t DefaultJobs();

 private:
  struct Batch {
    size_t begin = 0;
    size_t count = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::mutex error_mu;
    std::exception_ptr error;
  };

  void WorkerLoop();
  void RunBatch(Batch& batch);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  // Serializes concurrent ParallelFor calls from different threads.
  std::mutex run_mu_;
  // Shared so a worker woken late can still probe a batch the caller has
  // already finished waiting on.
  std::shared_ptr<Batch> batch_;  // guarded by mu_
  bool stop_ = false;             // guarded by mu_
  std::vector<std::thread> workers_;
};

// Lazily constructed process-wide pool sized by ThreadPool::DefaultJobs().
// Used by the bench harness; tools that take --jobs build their own.
ThreadPool& SharedThreadPool();

}  // namespace dcat

#endif  // SRC_COMMON_THREAD_POOL_H_
