#include "src/common/histogram.h"

#include <algorithm>
#include <cstdio>

namespace dcat {

Histogram::Histogram(size_t num_buckets) : counts_(std::max<size_t>(num_buckets, 1), 0) {}

void Histogram::Add(uint64_t value, uint64_t count) {
  const size_t bucket = std::min<uint64_t>(value, counts_.size() - 1);
  counts_[bucket] += count;
  total_ += count;
}

double Histogram::Fraction(size_t i) const {
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

double Histogram::FractionAtLeast(uint64_t threshold) const {
  if (total_ == 0) {
    return 0.0;
  }
  uint64_t sum = 0;
  for (size_t i = std::min<uint64_t>(threshold, counts_.size() - 1); i < counts_.size(); ++i) {
    sum += counts_[i];
  }
  return static_cast<double>(sum) / static_cast<double>(total_);
}

std::string Histogram::ToString() const {
  std::string out;
  char line[128];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const bool overflow = i == counts_.size() - 1;
    std::snprintf(line, sizeof(line), "%s%zu: %llu (%.1f%%)\n", overflow ? ">=" : "", i,
                  static_cast<unsigned long long>(counts_[i]), 100.0 * Fraction(i));
    out += line;
  }
  return out;
}

}  // namespace dcat
