// Deterministic, fast pseudo-random number generation.
//
// All simulator components take an explicit Rng so experiments are exactly
// reproducible from a seed. The generator is xoshiro256** seeded via
// splitmix64, which is both faster and statistically stronger than
// std::minstd and has no global state.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <limits>

namespace dcat {

// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator so it can also be
// used with <random> distributions when needed.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<uint64_t>::max(); }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  // multiply-shift reduction (biased by < 2^-64, irrelevant here).
  uint64_t Below(uint64_t bound) {
    return static_cast<uint64_t>((static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_{};
};

}  // namespace dcat

#endif  // SRC_COMMON_RNG_H_
