#include "src/common/log.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace dcat {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s] %s:%d: %s\n", LevelName(level), Basename(file), line,
               message.c_str());
}

}  // namespace dcat
