#include "src/common/thread_pool.h"

#include <cstdlib>
#include <stdexcept>

#include "src/common/strings.h"

namespace dcat {

namespace {
// Set while a thread (worker or participating caller) executes batch
// tasks; guards against nested ParallelFor, which would deadlock the
// fixed-size pool.
thread_local bool tls_in_parallel_task = false;
}  // namespace

size_t ThreadPool::DefaultJobs() {
  if (const char* env = std::getenv("DCAT_JOBS"); env != nullptr) {
    uint64_t jobs = 0;
    if (ParseUint64(env, &jobs) && jobs > 0) {
      return static_cast<size_t>(jobs);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = DefaultJobs();
  }
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || (batch_ != nullptr &&
                         batch_->next.load(std::memory_order_relaxed) < batch_->count);
      });
      if (stop_) {
        return;
      }
      batch = batch_;
    }
    RunBatch(*batch);
  }
}

void ThreadPool::RunBatch(Batch& batch) {
  tls_in_parallel_task = true;
  for (;;) {
    const size_t index = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch.count) {
      break;
    }
    try {
      (*batch.fn)(batch.begin + index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.error_mu);
      if (!batch.error) {
        batch.error = std::current_exception();
      }
    }
    if (batch.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.count) {
      // Lock pairs with the caller's wait to avoid a missed wakeup.
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_all();
    }
  }
  tls_in_parallel_task = false;
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  if (tls_in_parallel_task) {
    throw std::logic_error(
        "ThreadPool::ParallelFor: nested call from inside a pool task "
        "(parallelize at one level only)");
  }
  const size_t count = end - begin;
  if (workers_.empty() || count == 1) {
    // Inline tasks still count as "inside a task" so nesting behaves the
    // same whether a range happened to run pooled or not.
    struct FlagGuard {
      FlagGuard() { tls_in_parallel_task = true; }
      ~FlagGuard() { tls_in_parallel_task = false; }
    } guard;
    for (size_t i = begin; i < end; ++i) {
      fn(i);  // exceptions propagate directly
    }
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mu_);
  auto batch = std::make_shared<Batch>();
  batch->begin = begin;
  batch->count = count;
  batch->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
  }
  work_cv_.notify_all();
  RunBatch(*batch);  // the caller participates
  {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [&batch] {
      return batch->completed.load(std::memory_order_acquire) == batch->count;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_.reset();
  }
  if (batch->error) {
    std::rethrow_exception(batch->error);
  }
}

void ThreadPool::ParallelForChunked(size_t begin, size_t end, size_t grain,
                                    const std::function<void(size_t)>& fn) {
  if (begin >= end) {
    return;
  }
  if (grain <= 1) {
    ParallelFor(begin, end, fn);
    return;
  }
  const size_t count = end - begin;
  const size_t chunks = (count + grain - 1) / grain;
  ParallelFor(0, chunks, [&](size_t chunk) {
    const size_t lo = begin + chunk * grain;
    const size_t hi = lo + grain < end ? lo + grain : end;
    for (size_t i = lo; i < hi; ++i) {
      fn(i);
    }
  });
}

ThreadPool& SharedThreadPool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace dcat
