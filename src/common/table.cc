#include "src/common/table.h"

#include <algorithm>
#include <cstdio>

namespace dcat {
namespace {

std::string PadTo(const std::string& s, size_t width) {
  std::string out = s;
  out.resize(std::max(width, s.size()), ' ');
  return out;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::FmtInt(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TextTable::FmtPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, 100.0 * fraction);
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (size_t c = 0; c < header_.size(); ++c) {
    out += PadTo(header_[c], widths[c]);
    out += c + 1 < header_.size() ? "  " : "\n";
  }
  for (size_t c = 0; c < header_.size(); ++c) {
    out += std::string(widths[c], '-');
    out += c + 1 < header_.size() ? "  " : "\n";
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += PadTo(row[c], widths[c]);
      out += c + 1 < row.size() ? "  " : "\n";
    }
  }
  return out;
}

std::string TextTable::ToCsv() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out += c + 1 < row.size() ? "," : "\n";
    }
  };
  append_row(header_);
  for (const auto& row : rows_) {
    append_row(row);
  }
  return out;
}

}  // namespace dcat
