// ASCII table and CSV emission for benchmark harnesses.
//
// Every bench binary reproduces one of the paper's tables/figures; this
// writer renders aligned columns for the terminal and optionally mirrors the
// rows to a CSV file for plotting.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <initializer_list>
#include <string>
#include <vector>

namespace dcat {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Adds a row; it may have fewer cells than the header (padded empty).
  void AddRow(std::vector<std::string> row);

  // Formatting helpers for numeric cells.
  static std::string Fmt(double v, int precision = 2);
  static std::string FmtInt(long long v);
  static std::string FmtPercent(double fraction, int precision = 1);

  // Renders the aligned table, header underlined with dashes.
  std::string ToString() const;
  // Comma-separated rendering (no alignment), suitable for plotting scripts.
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dcat

#endif  // SRC_COMMON_TABLE_H_
