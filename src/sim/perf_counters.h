// Per-core performance counter block.
//
// Mirrors the MSR events the dCat daemon reads on real hardware (Table 2 of
// the paper): LLC references/misses, L1 references, retired instructions and
// unhalted cycles. The controller works with *deltas* between periodic
// samples, so the block supports snapshot-and-subtract.
#ifndef SRC_SIM_PERF_COUNTERS_H_
#define SRC_SIM_PERF_COUNTERS_H_

#include <cstdint>

namespace dcat {

struct PerfCounterBlock {
  uint64_t retired_instructions = 0;
  // Kept as double internally: the timing model produces fractional cycles
  // (base CPI 0.25). Rounded only at presentation time.
  double unhalted_cycles = 0.0;
  uint64_t l1_references = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_references = 0;
  uint64_t l2_misses = 0;
  uint64_t llc_references = 0;
  uint64_t llc_misses = 0;

  PerfCounterBlock operator-(const PerfCounterBlock& rhs) const {
    PerfCounterBlock d;
    d.retired_instructions = retired_instructions - rhs.retired_instructions;
    d.unhalted_cycles = unhalted_cycles - rhs.unhalted_cycles;
    d.l1_references = l1_references - rhs.l1_references;
    d.l1_misses = l1_misses - rhs.l1_misses;
    d.l2_references = l2_references - rhs.l2_references;
    d.l2_misses = l2_misses - rhs.l2_misses;
    d.llc_references = llc_references - rhs.llc_references;
    d.llc_misses = llc_misses - rhs.llc_misses;
    return d;
  }

  PerfCounterBlock& operator+=(const PerfCounterBlock& rhs) {
    retired_instructions += rhs.retired_instructions;
    unhalted_cycles += rhs.unhalted_cycles;
    l1_references += rhs.l1_references;
    l1_misses += rhs.l1_misses;
    l2_references += rhs.l2_references;
    l2_misses += rhs.l2_misses;
    llc_references += rhs.llc_references;
    llc_misses += rhs.llc_misses;
    return *this;
  }

  // Derived metrics used by the controller. All guard division by zero.
  double Ipc() const {
    return unhalted_cycles > 0.0 ? static_cast<double>(retired_instructions) / unhalted_cycles
                                 : 0.0;
  }
  double LlcMissRate() const {
    return llc_references > 0 ? static_cast<double>(llc_misses) /
                                    static_cast<double>(llc_references)
                              : 0.0;
  }
  // Memory accesses per instruction, estimated from L1 references exactly as
  // the paper does (§4, "we use L1 references value to estimate the memory
  // accesses number").
  double MemAccessesPerInstruction() const {
    return retired_instructions > 0 ? static_cast<double>(l1_references) /
                                          static_cast<double>(retired_instructions)
                                    : 0.0;
  }
};

}  // namespace dcat

#endif  // SRC_SIM_PERF_COUNTERS_H_
