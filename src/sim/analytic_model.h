// Hybrid-fidelity engine: the analytic steady-phase fast path.
//
// The SoA line-level model walks every memory access through L1 -> L2 ->
// LLC -> DRAM. That is what makes the figures faithful — and what caps
// scenario throughput at a few million accesses per second. dCat's own
// design makes a shortcut legal: the controller consumes only per-tick
// aggregate counters, and once a tenant's phase is steady those aggregates
// are (to the controller's thresholds) constant. So while a tenant is
// provably boring, this engine advances its cores *analytically* — it
// replays the per-wall-cycle counter rates recorded from the tenant's last
// line-simulated interval, pads the remainder of the interval with halted
// cycles, credits the modeled DRAM traffic to the MBM counters, and skips
// the workload's instruction position forward — instead of simulating every
// line access. Cache contents are left untouched, so a fallback resumes
// line-level simulation against warm state.
//
// The validation contract is DECISION equivalence, not counter equivalence:
// a hybrid run must produce a byte-identical decision trace
// (ExtractDecisionTrace) to the pure line-level run. The entry guards are
// therefore deliberately conservative; `dcat_fuzz --fidelity-diff` enforces
// the contract over the pinned fuzz corpus for every registered policy.
//
// A tenant enters the fast path only when ALL of the following hold
// (hybrid mode; --fidelity=analytic skips the steadiness gates):
//   * a line-level model was recorded (warmup) and is fresh (resample),
//   * no tenant churn or capacity-mask change anywhere on the socket for
//     churn_hold_ticks (fidelity domains share the LLC's way partition),
//   * the controller made no decision about this tenant for steady_ticks
//     (no allocation/category/phase/anomaly events),
//   * the controller-side steadiness gates pass (phase detector streak,
//     signature delta, threshold margins — computed by the Host),
//   * the workload itself promises a steady horizon comfortably past the
//     next interval (Workload::SteadyHorizon),
//   * every tenant sharing the COS agrees (clustered policies switch whole
//     COS groups together — per-COS masks are what isolate cache state).
// Any violation drops the whole COS group back to the line-level model.
//
// Layering: this file lives in src/sim and must not link the controller or
// telemetry libraries. It uses only header-only telemetry types (the
// FidelityEvent structs and the abstract EventSink) and sim types.
#ifndef SRC_SIM_ANALYTIC_MODEL_H_
#define SRC_SIM_ANALYTIC_MODEL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/sim/perf_counters.h"
#include "src/telemetry/events.h"

namespace dcat {

class Socket;

enum class FidelityMode {
  kLine,      // every access simulated (the default; bit-identical to seed)
  kAnalytic,  // trust the model as soon as it is warm (throughput mode)
  kHybrid,    // guarded switching, decision-equivalent to kLine
};

constexpr const char* FidelityModeName(FidelityMode mode) {
  switch (mode) {
    case FidelityMode::kLine:
      return "line";
    case FidelityMode::kAnalytic:
      return "analytic";
    case FidelityMode::kHybrid:
      return "hybrid";
  }
  return "?";
}

std::optional<FidelityMode> FidelityModeFromName(const std::string& name);

struct FidelityConfig {
  FidelityMode mode = FidelityMode::kLine;
  // Decision-quiet + steady intervals required before entering the fast
  // path (also the minimum line warmup after any churn).
  uint32_t steady_ticks = 3;
  // Forced line-level resample after this many consecutive analytic ticks
  // (model-confidence decay). 0 disables resampling.
  uint32_t resample_every = 16;
  // Line-level hold after tenant churn or any capacity-mask change.
  uint32_t churn_hold_ticks = 2;
  // Fall back this many predicted intervals before a workload-announced
  // phase boundary, so the boundary itself is always line-simulated.
  uint32_t horizon_guard_ticks = 2;
};

// Per-tenant gate inputs the Host computes from the controller snapshot
// each tick (the engine itself never talks to the controller).
struct TenantFidelityInput {
  uint32_t id = 0;
  uint8_t cos = 0;
  // Controller-side steadiness: phase-detector streak >= steady_ticks,
  // signature delta deep inside the phase threshold, counter metrics far
  // from every categorization threshold, baseline established, no
  // quarantine. Computed by the Host; false keeps the tenant line-level.
  bool controller_steady = false;
  // Minimum Workload::SteadyHorizon over the tenant's active vCPUs.
  uint64_t steady_horizon = 0;
};

// The engine proper. One instance per Host/socket; inert in kLine mode
// (the Host does not construct one).
class AnalyticModelEngine {
 public:
  // `sink` (nullable, borrowed) receives FidelityEvents on transitions.
  AnalyticModelEngine(Socket* socket, const FidelityConfig& config, EventSink* sink);

  const FidelityConfig& config() const { return config_; }

  // --- lifecycle notifications (Host) ---
  void AddTenant(uint32_t id, std::vector<uint16_t> cores);
  void RemoveTenant(uint32_t id);
  // Tenant arrival/departure/workload swap, a controller restart, or any
  // other event that perturbs cache state broadly: every model is
  // invalidated and the socket holds at line fidelity for churn_hold_ticks.
  void NoteChurn(uint64_t tick);
  // A capacity mask changed somewhere on the socket (allocation applied):
  // holds every tenant at line fidelity for churn_hold_ticks.
  void NoteMaskActivity(uint64_t tick);
  // The controller decided something about this tenant (allocation,
  // category move, phase change, anomaly): resets its quiet streak. When
  // the decision changed the tenant's ways its model is also invalidated.
  void NoteDecisionActivity(uint32_t id, uint64_t tick, bool invalidates_model);

  // --- the per-tick protocol (Host::Step) ---
  // 1. PlanTick before advancing any VM: decides line vs analytic for the
  //    coming interval (`interval_cycles` wall cycles ending the tick).
  void PlanTick(uint64_t tick, double interval_cycles,
                const std::vector<TenantFidelityInput>& inputs);
  bool IsAnalytic(uint32_t id) const;
  // 2. For each analytic tenant, instead of Vm::RunUntil: injects modeled
  //    counter deltas up to wall `target_wall` and returns the per-core
  //    instruction counts the caller must Workload::SkipInstructions by.
  std::vector<uint64_t> AdvanceAnalytically(uint32_t id, double target_wall);
  // 3. ObserveTick after every VM advanced: refreshes models from the
  //    line-simulated tenants and rolls the per-COS MBM baselines.
  void ObserveTick();

  // --- coverage accounting (feeds sim.analytic_ticks_total etc.) ---
  uint64_t analytic_core_ticks() const { return analytic_core_ticks_; }
  uint64_t line_core_ticks() const { return line_core_ticks_; }
  uint64_t fallback_transitions() const { return fallbacks_; }
  // Fraction of core-ticks advanced analytically since construction.
  double coverage() const;

 private:
  // Per-wall-cycle counter rates recorded from one line-simulated interval.
  struct CoreModel {
    double instructions = 0.0;
    double l1_references = 0.0;
    double l1_misses = 0.0;
    double l2_references = 0.0;
    double l2_misses = 0.0;
    double llc_references = 0.0;
    double llc_misses = 0.0;
    double unhalted = 0.0;  // fraction of wall cycles unhalted (<= 1)
  };

  struct TenantTrack {
    std::vector<uint16_t> cores;
    uint8_t cos = 0;
    std::vector<CoreModel> models;
    std::vector<PerfCounterBlock> prev_counters;
    std::vector<double> prev_wall;
    bool warm = false;           // a line interval has been recorded
    bool analytic = false;       // this tick's plan
    uint32_t model_age = 0;      // analytic ticks since the last line sample
    uint64_t last_activity_tick = 0;  // last controller decision about us
  };

  struct Verdict {
    bool analytic = false;
    FidelityReason reason = FidelityReason::kWarmup;
  };
  Verdict JudgeTenant(const TenantTrack& track, uint64_t tick, double interval_cycles,
                      const TenantFidelityInput& input) const;

  Socket* socket_;
  FidelityConfig config_;
  EventSink* sink_;
  std::map<uint32_t, TenantTrack> tenants_;
  // MBM bookkeeping: cumulative byte baseline and modeled line-transfer
  // rate per COS (shared-COS groups record and credit once per COS).
  std::map<uint8_t, uint64_t> cos_prev_bytes_;
  std::map<uint8_t, double> cos_lines_per_cycle_;
  std::set<uint8_t> credited_cos_this_tick_;
  uint64_t hold_until_tick_ = 0;  // line fidelity through this tick
  // Some tenant's core sits mid-chunk past the coming tick boundary (see
  // the starvation hold in PlanTick): nobody may go analytic this tick.
  bool starved_tenant_on_socket_ = false;
  uint64_t analytic_core_ticks_ = 0;
  uint64_t line_core_ticks_ = 0;
  uint64_t fallbacks_ = 0;
};

}  // namespace dcat

#endif  // SRC_SIM_ANALYTIC_MODEL_H_
