#include "src/sim/analytic_model.h"

#include <algorithm>
#include <cmath>

#include "src/sim/socket.h"

namespace dcat {

std::optional<FidelityMode> FidelityModeFromName(const std::string& name) {
  for (const FidelityMode mode :
       {FidelityMode::kLine, FidelityMode::kAnalytic, FidelityMode::kHybrid}) {
    if (name == FidelityModeName(mode)) {
      return mode;
    }
  }
  return std::nullopt;
}

AnalyticModelEngine::AnalyticModelEngine(Socket* socket, const FidelityConfig& config,
                                         EventSink* sink)
    : socket_(socket), config_(config), sink_(sink) {}

void AnalyticModelEngine::AddTenant(uint32_t id, std::vector<uint16_t> cores) {
  TenantTrack track;
  track.cores = std::move(cores);
  track.models.resize(track.cores.size());
  track.prev_counters.resize(track.cores.size());
  track.prev_wall.resize(track.cores.size(), 0.0);
  for (size_t i = 0; i < track.cores.size(); ++i) {
    const Core& core = socket_->core(track.cores[i]);
    track.prev_counters[i] = core.counters();
    track.prev_wall[i] = core.wall_cycles();
  }
  tenants_[id] = std::move(track);
}

void AnalyticModelEngine::RemoveTenant(uint32_t id) { tenants_.erase(id); }

void AnalyticModelEngine::NoteChurn(uint64_t tick) {
  hold_until_tick_ = std::max(hold_until_tick_, tick + config_.churn_hold_ticks);
  // Churn perturbs cache state beyond any one mask (flushes, core resets):
  // every recorded model is stale.
  for (auto& [id, track] : tenants_) {
    (void)id;
    track.warm = false;
    track.model_age = 0;
  }
  cos_lines_per_cycle_.clear();
}

void AnalyticModelEngine::NoteMaskActivity(uint64_t tick) {
  hold_until_tick_ = std::max(hold_until_tick_, tick + config_.churn_hold_ticks);
}

void AnalyticModelEngine::NoteDecisionActivity(uint32_t id, uint64_t tick,
                                               bool invalidates_model) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return;
  }
  it->second.last_activity_tick = std::max(it->second.last_activity_tick, tick);
  if (invalidates_model) {
    it->second.warm = false;  // the rates were measured under a different mask
    it->second.model_age = 0;
  }
}

AnalyticModelEngine::Verdict AnalyticModelEngine::JudgeTenant(
    const TenantTrack& track, uint64_t tick, double interval_cycles,
    const TenantFidelityInput& input) const {
  if (!track.warm) {
    return {false, FidelityReason::kWarmup};
  }
  if (config_.mode == FidelityMode::kAnalytic) {
    // Throughput mode: trust the model as soon as one line interval exists.
    return {true, FidelityReason::kForced};
  }
  if (tick <= hold_until_tick_) {
    return {false, FidelityReason::kChurn};
  }
  // Decision-quiet: no controller event about this tenant for steady_ticks
  // complete intervals.
  if (tick <= track.last_activity_tick + config_.steady_ticks) {
    return {false, FidelityReason::kDecision};
  }
  if (!input.controller_steady) {
    return {false, FidelityReason::kUnsteady};
  }
  if (starved_tenant_on_socket_) {
    return {false, FidelityReason::kUnsteady};
  }
  if (config_.resample_every > 0 && track.model_age >= config_.resample_every) {
    return {false, FidelityReason::kResample};
  }
  // The workload must promise steadiness comfortably past the next interval:
  // the fastest core's predicted instruction demand times the guard window.
  double max_predicted = 0.0;
  for (const CoreModel& model : track.models) {
    max_predicted = std::max(max_predicted, model.instructions * interval_cycles);
  }
  const double guard_window =
      max_predicted * static_cast<double>(config_.horizon_guard_ticks + 1);
  if (input.steady_horizon != UINT64_MAX &&  // Workload::kSteadyForever
      static_cast<double>(input.steady_horizon) <= guard_window) {
    return {false, FidelityReason::kPhaseBoundary};
  }
  return {true, FidelityReason::kSteady};
}

void AnalyticModelEngine::PlanTick(uint64_t tick, double interval_cycles,
                                   const std::vector<TenantFidelityInput>& inputs) {
  credited_cos_this_tick_.clear();

  // Socket-wide starvation hold. A line chunk that costs more than an
  // interval carries its core's wall clock past the coming tick boundary:
  // the tenant retires nothing for whole intervals while the chunk is in
  // flight, then bursts. That tenant never enters the fast path itself
  // (flat counters fail the progress gate), but its controller decisions —
  // frozen-counter anomalies and phase flips — are knife-edge on byte-exact
  // shared state: the MBM cross-check compares exact per-COS byte levels
  // whose baselines ride along when clustering policies reassign COS, and
  // guest pages of different VMs can alias to the same physical line, so a
  // hit can cross capacity-mask boundaries. No mask- or COS-scoped rule can
  // contain those channels, so while any tenant is starved the whole socket
  // stays at line fidelity. (Healthy tenants overshoot by less than one
  // chunk, well inside one interval, and never trip this.)
  const double coming_interval_end = static_cast<double>(tick) * interval_cycles;
  starved_tenant_on_socket_ = false;
  for (const auto& [id, track] : tenants_) {
    (void)id;
    for (const uint16_t core_id : track.cores) {
      if (socket_->core(core_id).wall_cycles() >= coming_interval_end) {
        starved_tenant_on_socket_ = true;
      }
    }
  }

  // First pass: judge each tenant in isolation.
  std::map<uint32_t, Verdict> verdicts;
  std::map<uint8_t, Verdict> cos_block;  // first blocking verdict per COS
  for (const TenantFidelityInput& input : inputs) {
    auto it = tenants_.find(input.id);
    if (it == tenants_.end()) {
      continue;
    }
    it->second.cos = input.cos;
    const Verdict verdict = JudgeTenant(it->second, tick, interval_cycles, input);
    verdicts[input.id] = verdict;
    if (!verdict.analytic && cos_block.find(input.cos) == cos_block.end()) {
      cos_block[input.cos] = verdict;
    }
  }

  // Propagate blocks across overlapping capacity masks. Per-COS masks are
  // what isolate cache state, but CAT masks may share ways across COS (the
  // clustering policies overlap donor ways deliberately). A line-level
  // tenant keeps issuing real accesses into those shared ways — evicting
  // lines and moving the neighbors' miss counters and MBM — so every COS
  // whose mask intersects a blocked COS's mask must hold line fidelity
  // too, transitively, since the overlap relation chains.
  std::map<uint8_t, uint32_t> cos_masks;
  for (const TenantFidelityInput& input : inputs) {
    if (tenants_.find(input.id) != tenants_.end()) {
      cos_masks.emplace(input.cos, socket_->CosMask(input.cos));
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [cos, mask] : cos_masks) {
      if (cos_block.find(cos) != cos_block.end()) {
        continue;
      }
      for (const auto& [blocked_cos, blocked_verdict] : cos_block) {
        const auto blocked_mask = cos_masks.find(blocked_cos);
        if (blocked_mask != cos_masks.end() && (mask & blocked_mask->second) != 0u) {
          cos_block.emplace(cos, blocked_verdict);
          changed = true;
          break;
        }
      }
    }
  }

  // Second pass: a COS group switches as a unit — per-COS capacity masks are
  // what isolate cache state, so a group member staying line-level forces
  // the whole group down (its accesses evict within the shared ways).
  for (const TenantFidelityInput& input : inputs) {
    auto it = tenants_.find(input.id);
    if (it == tenants_.end()) {
      continue;
    }
    TenantTrack& track = it->second;
    Verdict verdict = verdicts[input.id];
    const auto blocked = cos_block.find(input.cos);
    if (verdict.analytic && blocked != cos_block.end()) {
      verdict = blocked->second;  // demoted by a COS-group neighbor
    }
    const bool was_analytic = track.analytic;
    track.analytic = verdict.analytic;
    if (track.analytic) {
      analytic_core_ticks_ += track.cores.size();
    } else {
      line_core_ticks_ += track.cores.size();
    }
    if (was_analytic != track.analytic) {
      if (!track.analytic) {
        ++fallbacks_;
      }
      if (sink_ != nullptr) {
        FidelityEvent event;
        event.tick = tick;
        event.tenant = input.id;
        event.analytic = track.analytic;
        event.reason = verdict.reason;
        sink_->OnFidelity(event);
      }
    }
  }
}

bool AnalyticModelEngine::IsAnalytic(uint32_t id) const {
  const auto it = tenants_.find(id);
  return it != tenants_.end() && it->second.analytic;
}

std::vector<uint64_t> AnalyticModelEngine::AdvanceAnalytically(uint32_t id,
                                                               double target_wall) {
  TenantTrack& track = tenants_.at(id);
  std::vector<uint64_t> skipped(track.cores.size(), 0);
  double first_core_desired = 0.0;
  for (size_t i = 0; i < track.cores.size(); ++i) {
    Core& core = socket_->core(track.cores[i]);
    const double desired = target_wall - core.wall_cycles();
    if (i == 0) {
      first_core_desired = desired;
    }
    if (desired <= 0.0) {
      continue;  // line overshoot already carried the core past this tick
    }
    const CoreModel& model = track.models[i];
    PerfCounterBlock delta;
    delta.retired_instructions =
        static_cast<uint64_t>(std::llround(model.instructions * desired));
    delta.l1_references =
        static_cast<uint64_t>(std::llround(model.l1_references * desired));
    delta.l1_misses = static_cast<uint64_t>(std::llround(model.l1_misses * desired));
    delta.l2_references =
        static_cast<uint64_t>(std::llround(model.l2_references * desired));
    delta.l2_misses = static_cast<uint64_t>(std::llround(model.l2_misses * desired));
    delta.llc_references =
        static_cast<uint64_t>(std::llround(model.llc_references * desired));
    delta.llc_misses = static_cast<uint64_t>(std::llround(model.llc_misses * desired));
    // The unhalted fraction is <= 1 by construction; the halted remainder
    // pads the core exactly to the tick boundary, so analytic ticks never
    // accumulate wall-clock drift against the line schedule.
    const double unhalted = std::min(model.unhalted * desired, desired);
    delta.unhalted_cycles = unhalted;
    core.ApplyModeledInterval(delta, desired - unhalted);
    skipped[i] = delta.retired_instructions;
  }
  // Keep the MBM liveness signal moving: credit the recorded DRAM transfer
  // rate once per COS per tick (shared-COS groups advance together).
  if (credited_cos_this_tick_.insert(track.cos).second && first_core_desired > 0.0) {
    const auto rate = cos_lines_per_cycle_.find(track.cos);
    if (rate != cos_lines_per_cycle_.end() && rate->second > 0.0) {
      const uint64_t lines =
          static_cast<uint64_t>(std::llround(rate->second * first_core_desired));
      socket_->memory_bus().CreditModeledTransfers(track.cos, lines);
    }
  }
  ++track.model_age;
  return skipped;
}

void AnalyticModelEngine::ObserveTick() {
  const uint32_t line_size = socket_->config().llc_geometry.line_size;
  // Which COSes were fully line-simulated this tick (every tenant on them)?
  std::map<uint8_t, bool> cos_all_line;
  std::map<uint8_t, double> cos_wall_delta;  // first member's first core
  for (auto& [id, track] : tenants_) {
    (void)id;
    auto [it, inserted] = cos_all_line.emplace(track.cos, !track.analytic);
    if (!inserted) {
      it->second = it->second && !track.analytic;
    }
    if (cos_wall_delta.find(track.cos) == cos_wall_delta.end() && !track.cores.empty()) {
      cos_wall_delta[track.cos] =
          socket_->core(track.cores[0]).wall_cycles() - track.prev_wall[0];
    }
  }

  for (auto& [id, track] : tenants_) {
    (void)id;
    for (size_t i = 0; i < track.cores.size(); ++i) {
      const Core& core = socket_->core(track.cores[i]);
      const PerfCounterBlock delta = core.counters() - track.prev_counters[i];
      const double wall_delta = core.wall_cycles() - track.prev_wall[i];
      if (!track.analytic && wall_delta > 0.0) {
        CoreModel& model = track.models[i];
        model.instructions = static_cast<double>(delta.retired_instructions) / wall_delta;
        model.l1_references = static_cast<double>(delta.l1_references) / wall_delta;
        model.l1_misses = static_cast<double>(delta.l1_misses) / wall_delta;
        model.l2_references = static_cast<double>(delta.l2_references) / wall_delta;
        model.l2_misses = static_cast<double>(delta.l2_misses) / wall_delta;
        model.llc_references = static_cast<double>(delta.llc_references) / wall_delta;
        model.llc_misses = static_cast<double>(delta.llc_misses) / wall_delta;
        model.unhalted = std::min(delta.unhalted_cycles / wall_delta, 1.0);
      }
      track.prev_counters[i] = core.counters();
      track.prev_wall[i] = core.wall_cycles();
    }
    if (!track.analytic) {
      track.warm = true;
      track.model_age = 0;
    }
  }

  // Roll the per-COS MBM baselines; refresh the transfer-rate model only
  // from fully line-simulated ticks.
  for (const auto& [cos, all_line] : cos_all_line) {
    const uint64_t total = socket_->memory_bus().TotalBytes(cos);
    const auto prev = cos_prev_bytes_.find(cos);
    if (prev != cos_prev_bytes_.end() && all_line) {
      const double wall_delta = cos_wall_delta[cos];
      if (wall_delta > 0.0) {
        cos_lines_per_cycle_[cos] =
            static_cast<double>(total - prev->second) / line_size / wall_delta;
      }
    }
    cos_prev_bytes_[cos] = total;
  }
}

double AnalyticModelEngine::coverage() const {
  const uint64_t total = analytic_core_ticks_ + line_core_ticks_;
  return total > 0 ? static_cast<double>(analytic_core_ticks_) / static_cast<double>(total)
                   : 0.0;
}

}  // namespace dcat
