// Victim selection policies for the set-associative cache model.
//
// CAT constrains which ways a fill may claim; the policy therefore always
// selects among an allowed-way mask. True LRU is the default (matches how
// the paper reasons about reuse); NRU and random are provided for the
// replacement-policy ablation in bench_ablation.
#ifndef SRC_SIM_REPLACEMENT_H_
#define SRC_SIM_REPLACEMENT_H_

#include <cstdint>

#include "src/common/rng.h"

namespace dcat {

enum class ReplacementKind {
  kLru,  // true least-recently-used via per-line timestamps
  // Not-recently-used: reference bits with a random victim among the
  // non-referenced candidates. This approximates the quad-age pseudo-LRU
  // of Intel's Broadwell LLC — crucially, a streaming scan CAN displace
  // reused lines (unlike true LRU, which protects them perfectly), which
  // is what makes "noisy neighbors" noisy in Figure 1.
  kNru,
  kRandom,  // uniform over allowed ways
};

const char* ReplacementKindName(ReplacementKind kind);

// Per-line replacement metadata, owned by the cache.
struct LineMeta {
  uint64_t last_use = 0;  // LRU timestamp
  bool referenced = false;  // NRU bit
};

// Selects the victim way within one set.
//
// `valid_mask` marks ways holding valid lines, `allowed_mask` the ways the
// accessor's COS may claim (never zero). Invalid allowed ways are always
// preferred. Returns the chosen way index.
class VictimSelector {
 public:
  explicit VictimSelector(ReplacementKind kind, uint64_t rng_seed = 0x7e91aceULL);

  ReplacementKind kind() const { return kind_; }

  uint32_t Select(uint32_t num_ways, uint32_t valid_mask, uint32_t allowed_mask, LineMeta* metas);

  // Called on every hit/fill so the policy can update its state.
  void Touch(LineMeta& meta, uint64_t now) const;

 private:
  ReplacementKind kind_;
  Rng rng_;
};

}  // namespace dcat

#endif  // SRC_SIM_REPLACEMENT_H_
