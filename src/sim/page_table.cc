#include "src/sim/page_table.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/units.h"

namespace dcat {
namespace {

constexpr uint64_t kSmallPage = 4_KiB;
constexpr uint64_t kHugePage = 2_MiB;

}  // namespace

const char* PagePolicyName(PagePolicy policy) {
  switch (policy) {
    case PagePolicy::kContiguous:
      return "contiguous";
    case PagePolicy::kRandom4K:
      return "4K";
    case PagePolicy::kHuge2M:
      return "2M-huge";
  }
  return "?";
}

PageTable::PageTable(PagePolicy policy, uint64_t phys_bytes, uint64_t seed, uint64_t phys_base)
    : policy_(policy), phys_bytes_(phys_bytes), phys_base_(phys_base), rng_(seed) {
  if (phys_bytes_ < kHugePage) {
    std::fprintf(stderr, "PageTable: physical space too small (%llu bytes)\n",
                 static_cast<unsigned long long>(phys_bytes_));
    std::abort();
  }
}

uint64_t PageTable::PageSize() const {
  return policy_ == PagePolicy::kHuge2M ? kHugePage : kSmallPage;
}

uint64_t PageTable::Translate(uint64_t vaddr) {
  if (policy_ == PagePolicy::kContiguous) {
    return phys_base_ + vaddr;
  }
  const uint64_t page_size = PageSize();
  const uint64_t page_number = vaddr / page_size;
  const uint64_t offset = vaddr % page_size;
  return FrameFor(page_number) + offset;
}

uint64_t PageTable::FrameFor(uint64_t page_number) {
  if (auto it = page_to_frame_.find(page_number); it != page_to_frame_.end()) {
    return it->second;
  }
  const uint64_t page_size = PageSize();
  const uint64_t num_frames = phys_bytes_ / page_size;
  if (page_to_frame_.size() >= num_frames) {
    std::fprintf(stderr, "PageTable: out of physical frames (%llu mapped)\n",
                 static_cast<unsigned long long>(page_to_frame_.size()));
    std::abort();
  }
  // Rejection-sample a free frame; load factor stays low in practice because
  // working sets are far smaller than the physical space.
  uint64_t frame_index = 0;
  do {
    frame_index = rng_.Below(num_frames);
  } while (!used_frames_.insert(frame_index).second);
  const uint64_t frame_addr = phys_base_ + frame_index * page_size;
  page_to_frame_.emplace(page_number, frame_addr);
  return frame_addr;
}

}  // namespace dcat
