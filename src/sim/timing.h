// Latency model for the simulated memory hierarchy.
//
// Latencies are representative of a Broadwell Xeon at 2.3 GHz; the absolute
// values only need to preserve the ordering L1 << L2 << LLC << DRAM for the
// paper's results to reproduce in shape.
#ifndef SRC_SIM_TIMING_H_
#define SRC_SIM_TIMING_H_

#include <cstdint>

namespace dcat {

struct TimingModel {
  double l1_hit_cycles = 4.0;
  double l2_hit_cycles = 12.0;
  double llc_hit_cycles = 42.0;
  double dram_cycles = 180.0;
  // Cycles per non-memory instruction (4-wide issue => 0.25).
  double base_cpi = 0.25;
  // Memory-level parallelism: outstanding-miss overlap divides the DRAM
  // penalty for independent accesses. 1.0 = fully serialized (pointer chase).
  double dram_parallelism = 1.0;
  // Sequential-stream prefetching: an LLC miss whose line directly follows
  // the core's previous LLC miss is considered covered by the hardware
  // prefetcher and pays dram_cycles / stream_prefetch_factor instead. This
  // is what makes streaming scans (MLOAD) both fast and highly polluting,
  // as on real hardware.
  double stream_prefetch_factor = 6.0;
  double frequency_ghz = 2.3;

  double CyclesToNanos(double cycles) const { return cycles / frequency_ghz; }
};

}  // namespace dcat

#endif  // SRC_SIM_TIMING_H_
