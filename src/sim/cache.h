// Set-associative cache with Intel CAT way-partitioning semantics.
//
// The crucial CAT behaviour, reproduced exactly:
//   * A *lookup* may hit in ANY way of the set, regardless of the
//     accessor's class of service (COS). CAT does not partition hits.
//   * A *fill* (and therefore the eviction it causes) is restricted to the
//     ways in the accessor's COS capacity mask. Shrinking a mask does NOT
//     flush lines already resident in the removed ways — they linger until
//     some other COS that owns those ways evicts them (the paper's §6 notes
//     Intel provides no way-flush instruction).
//
// The cache is a passive model: it classifies accesses as hit/miss and
// reports evictions; timing and counters live in sim::Core / sim::Socket.
#ifndef SRC_SIM_CACHE_H_
#define SRC_SIM_CACHE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/sim/geometry.h"
#include "src/sim/replacement.h"

namespace dcat {

// Identifies who filled a line, for inclusive back-invalidation.
inline constexpr uint16_t kNoOwner = 0xffff;

struct CacheAccessResult {
  bool hit = false;
  // Valid when a fill evicted a resident line.
  bool evicted = false;
  uint64_t evicted_paddr = 0;
  uint16_t evicted_owner = kNoOwner;
  // COS the evicted line was charged to (for occupancy accounting).
  uint8_t evicted_cos = 0;
};

class SetAssociativeCache {
 public:
  SetAssociativeCache(const CacheGeometry& geometry,
                      ReplacementKind replacement = ReplacementKind::kLru);

  const CacheGeometry& geometry() const { return geometry_; }

  // Full mask covering every way of this cache.
  uint32_t FullWayMask() const { return (geometry_.num_ways >= 32) ? 0xffffffffu
                                                                   : ((1u << geometry_.num_ways) - 1); }

  // Performs a lookup and, on miss, a fill constrained to `allowed_ways`.
  // `cos` and `owner` are recorded on the filled line for occupancy
  // accounting and inclusive back-invalidation. `allocate_on_miss=false`
  // models a probe that must not disturb the cache (used for lookups only).
  CacheAccessResult Access(uint64_t paddr, uint32_t allowed_ways, uint8_t cos = 0,
                           uint16_t owner = kNoOwner, bool allocate_on_miss = true);

  // True if the line is resident (no state change).
  bool Contains(uint64_t paddr) const;

  // Invalidates one line if present; returns whether it was resident. Used
  // for inclusive back-invalidation from an outer level.
  bool Invalidate(uint64_t paddr);

  // Drops every line charged to `cos`; returns the number invalidated.
  // Models the paper's user-level "cache flush application" workaround.
  uint64_t FlushCos(uint8_t cos);

  // Drops every line charged to `cos` residing in a way outside
  // `allowed_ways`, returning the flushed lines so the caller can
  // back-invalidate inclusive copies. Used when a COS mask shrinks.
  struct FlushedLine {
    uint64_t paddr = 0;
    uint16_t owner = kNoOwner;
  };
  std::vector<FlushedLine> FlushCosOutsideWays(uint8_t cos, uint32_t allowed_ways);

  // Drops all lines.
  void Reset();

  // Lines currently charged to `cos` (CMT-style llc_occupancy, in lines).
  uint64_t OccupancyLines(uint8_t cos) const;
  uint64_t OccupancyBytes(uint8_t cos) const {
    return OccupancyLines(cos) * geometry_.line_size;
  }

  // Number of valid lines in set `set_index` (test/inspection hook).
  uint32_t ValidLinesInSet(uint32_t set_index) const;

 private:
  struct Line {
    uint64_t tag = 0;
    bool valid = false;
    uint8_t cos = 0;
    uint16_t owner = kNoOwner;
    LineMeta meta;
  };

  Line* FindLine(uint64_t paddr);
  const Line* FindLine(uint64_t paddr) const;

  CacheGeometry geometry_;
  VictimSelector selector_;
  std::vector<Line> lines_;       // num_sets * num_ways, set-major
  std::vector<uint64_t> cos_occupancy_;  // lines per COS (index 0..255)
  uint64_t clock_ = 0;            // LRU timestamp source
};

}  // namespace dcat

#endif  // SRC_SIM_CACHE_H_
