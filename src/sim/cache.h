// Set-associative cache with Intel CAT way-partitioning semantics.
//
// The crucial CAT behaviour, reproduced exactly:
//   * A *lookup* may hit in ANY way of the set, regardless of the
//     accessor's class of service (COS). CAT does not partition hits.
//   * A *fill* (and therefore the eviction it causes) is restricted to the
//     ways in the accessor's COS capacity mask. Shrinking a mask does NOT
//     flush lines already resident in the removed ways — they linger until
//     some other COS that owns those ways evicts them (the paper's §6 notes
//     Intel provides no way-flush instruction).
//
// The cache is a passive model: it classifies accesses as hit/miss and
// reports evictions; timing and counters live in sim::Core / sim::Socket.
//
// Storage is structure-of-arrays: per-set packed valid bitmasks plus
// contiguous per-line tag/cos/owner/meta arrays. Lookups walk only the
// valid ways of one set via the bitmask, and the replacement selector
// operates on the per-set LineMeta slice in place — the hot Access path
// copies nothing.
#ifndef SRC_SIM_CACHE_H_
#define SRC_SIM_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/sim/geometry.h"
#include "src/sim/replacement.h"

namespace dcat {

// Identifies who filled a line, for inclusive back-invalidation.
inline constexpr uint16_t kNoOwner = 0xffff;

struct CacheAccessResult {
  bool hit = false;
  // Valid when a fill evicted a resident line.
  bool evicted = false;
  uint64_t evicted_paddr = 0;
  uint16_t evicted_owner = kNoOwner;
  // COS the evicted line was charged to (for occupancy accounting).
  uint8_t evicted_cos = 0;
};

class SetAssociativeCache {
 public:
  // `num_cos` sizes the per-COS occupancy table; Access/Invalidate assert
  // (debug builds) that line COS values stay below it.
  SetAssociativeCache(const CacheGeometry& geometry,
                      ReplacementKind replacement = ReplacementKind::kLru,
                      uint16_t num_cos = 16);

  const CacheGeometry& geometry() const { return geometry_; }

  // Full mask covering every way of this cache (precomputed).
  uint32_t FullWayMask() const { return full_way_mask_; }

  // Performs a lookup and, on miss, a fill constrained to `allowed_ways`.
  // `cos` and `owner` are recorded on the filled line for occupancy
  // accounting and inclusive back-invalidation. `allocate_on_miss=false`
  // models a probe that must not disturb the cache (used for lookups only).
  CacheAccessResult Access(uint64_t paddr, uint32_t allowed_ways, uint8_t cos = 0,
                           uint16_t owner = kNoOwner, bool allocate_on_miss = true);

  // True if the line is resident (no state change).
  bool Contains(uint64_t paddr) const;

  // Invalidates one line if present; returns whether it was resident. Used
  // for inclusive back-invalidation from an outer level.
  bool Invalidate(uint64_t paddr);

  // A line dropped by a flush, reported so the caller can back-invalidate
  // inclusive copies in the owner's private caches.
  struct FlushedLine {
    uint64_t paddr = 0;
    uint16_t owner = kNoOwner;
  };

  // Drops every line charged to `cos`, returning the flushed lines.
  // Models the paper's user-level "cache flush application" workaround.
  // Callers modeling an inclusive hierarchy MUST back-invalidate the
  // returned (paddr, owner) pairs (Socket::FlushCos does).
  std::vector<FlushedLine> FlushCos(uint8_t cos);

  // Drops every line charged to `cos` residing in a way outside
  // `allowed_ways`, returning the flushed lines so the caller can
  // back-invalidate inclusive copies. Used when a COS mask shrinks.
  std::vector<FlushedLine> FlushCosOutsideWays(uint8_t cos, uint32_t allowed_ways);

  // Drops all lines.
  void Reset();

  // Lines currently charged to `cos` (CMT-style llc_occupancy, in lines).
  uint64_t OccupancyLines(uint8_t cos) const;
  uint64_t OccupancyBytes(uint8_t cos) const {
    return OccupancyLines(cos) * geometry_.line_size;
  }

  // Number of valid lines in set `set_index` (test/inspection hook).
  uint32_t ValidLinesInSet(uint32_t set_index) const;

 private:
  static constexpr uint32_t kNoWay = 0xffffffffu;

  // Way index of the resident line with `tag` in `set`, else kNoWay.
  uint32_t FindWay(uint32_t set, uint64_t tag) const;

  uint64_t LinePaddr(uint32_t set, uint64_t tag) const {
    return (tag * geometry_.num_sets + set) * geometry_.line_size;
  }

  CacheGeometry geometry_;
  VictimSelector selector_;
  uint32_t full_way_mask_ = 0;
  // SoA line storage, set-major: line (set, way) lives at index
  // set * num_ways + way of each per-line array.
  std::vector<uint64_t> tags_;
  std::vector<uint8_t> line_cos_;
  std::vector<uint16_t> line_owner_;
  std::vector<LineMeta> meta_;
  std::vector<uint32_t> valid_;  // per-set packed valid-way bitmask
  std::vector<uint64_t> cos_occupancy_;  // lines per COS, sized num_cos
  uint64_t clock_ = 0;  // LRU timestamp source
};

}  // namespace dcat

#endif  // SRC_SIM_CACHE_H_
