// A simulated CPU core with private L1D/L2 caches.
//
// Cores execute two kinds of work: memory accesses (walked through
// L1 -> L2 -> shared LLC -> DRAM) and compute instructions (charged at the
// timing model's base CPI). Every event updates the core's perf counter
// block, which is what the dCat daemon samples.
#ifndef SRC_SIM_CORE_H_
#define SRC_SIM_CORE_H_

#include <cstdint>

#include "src/sim/cache.h"
#include "src/sim/geometry.h"
#include "src/sim/perf_counters.h"
#include "src/sim/timing.h"

namespace dcat {

class Socket;

class Core {
 public:
  Core(uint16_t id, const CacheGeometry& l1_geometry, const CacheGeometry& l2_geometry,
       bool model_l2, const TimingModel& timing, Socket* socket);

  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;
  Core(Core&&) = default;

  uint16_t id() const { return id_; }
  const PerfCounterBlock& counters() const { return counters_; }
  double cycles() const { return counters_.unhalted_cycles; }

  // Wall-clock progress of this core including halted (idle) time. The
  // harness schedules cores by wall cycles; IPC uses unhalted cycles only,
  // so an idle vCPU does not dilute its VM's measured IPC.
  double wall_cycles() const { return counters_.unhalted_cycles + idle_cycles_; }

  // Executes one memory instruction touching physical address `paddr`.
  // Returns the access latency in cycles (already added to the counters).
  double Access(uint64_t paddr, bool write);

  // Executes `n` non-memory instructions.
  void Compute(uint64_t n);

  // Models idle (halted) time: advances wall-clock without retiring
  // instructions or unhalted cycles.
  void Idle(double cycles);

  // Invalidates `paddr` from the private caches; called by the socket when
  // the inclusive LLC evicts a line this core owns.
  void BackInvalidate(uint64_t paddr);

  // Drops all private-cache contents (used when re-assigning a core).
  void ResetCaches();

  // Hybrid-fidelity fast path (src/sim/analytic_model.h): folds a modeled
  // interval into the counter block without touching any cache state. The
  // caller supplies the counter deltas derived from the tenant's recorded
  // line-level rates plus the halted remainder of the interval; the private
  // caches keep their contents so a later fallback to line-level simulation
  // resumes against warm state.
  void ApplyModeledInterval(const PerfCounterBlock& delta, double idle_cycles) {
    counters_ += delta;
    idle_cycles_ += idle_cycles;
  }

 private:
  uint16_t id_;
  bool model_l2_;
  TimingModel timing_;
  Socket* socket_;  // not owned
  SetAssociativeCache l1_;
  SetAssociativeCache l2_;
  PerfCounterBlock counters_;
  double idle_cycles_ = 0.0;
  // Stream-prefetch detector state: line number of the previous LLC miss.
  uint64_t last_llc_miss_line_ = ~0ull;
};

}  // namespace dcat

#endif  // SRC_SIM_CORE_H_
