#include "src/sim/replacement.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace dcat {

const char* ReplacementKindName(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::kLru:
      return "lru";
    case ReplacementKind::kNru:
      return "nru";
    case ReplacementKind::kRandom:
      return "random";
  }
  return "?";
}

VictimSelector::VictimSelector(ReplacementKind kind, uint64_t rng_seed)
    : kind_(kind), rng_(rng_seed) {}

uint32_t VictimSelector::Select(uint32_t num_ways, uint32_t valid_mask, uint32_t allowed_mask,
                                LineMeta* metas) {
  if (allowed_mask == 0) {
    std::fprintf(stderr, "VictimSelector: empty allowed mask\n");
    std::abort();
  }
  // Invalid allowed way first: a free slot never costs an eviction.
  const uint32_t free_mask = allowed_mask & ~valid_mask & ((1u << num_ways) - 1);
  if (free_mask != 0) {
    return static_cast<uint32_t>(std::countr_zero(free_mask));
  }

  switch (kind_) {
    case ReplacementKind::kLru: {
      uint32_t victim = 0;
      uint64_t oldest = std::numeric_limits<uint64_t>::max();
      for (uint32_t w = 0; w < num_ways; ++w) {
        if ((allowed_mask >> w) & 1u) {
          if (metas[w].last_use < oldest) {
            oldest = metas[w].last_use;
            victim = w;
          }
        }
      }
      return victim;
    }
    case ReplacementKind::kNru: {
      // Random victim among allowed ways with a clear reference bit; if all
      // are referenced, clear them (aging) and retry.
      for (int pass = 0; pass < 2; ++pass) {
        uint32_t candidates = 0;
        for (uint32_t w = 0; w < num_ways; ++w) {
          if (((allowed_mask >> w) & 1u) && !metas[w].referenced) {
            candidates |= 1u << w;
          }
        }
        if (candidates != 0) {
          uint64_t pick = rng_.Below(static_cast<uint64_t>(std::popcount(candidates)));
          for (uint32_t w = 0; w < num_ways; ++w) {
            if ((candidates >> w) & 1u) {
              if (pick == 0) {
                return w;
              }
              --pick;
            }
          }
        }
        for (uint32_t w = 0; w < num_ways; ++w) {
          if ((allowed_mask >> w) & 1u) {
            metas[w].referenced = false;
          }
        }
      }
      return static_cast<uint32_t>(std::countr_zero(allowed_mask));
    }
    case ReplacementKind::kRandom: {
      const int candidates = std::popcount(allowed_mask);
      uint64_t pick = rng_.Below(static_cast<uint64_t>(candidates));
      for (uint32_t w = 0; w < num_ways; ++w) {
        if ((allowed_mask >> w) & 1u) {
          if (pick == 0) {
            return w;
          }
          --pick;
        }
      }
      break;
    }
  }
  return static_cast<uint32_t>(std::countr_zero(allowed_mask));
}

void VictimSelector::Touch(LineMeta& meta, uint64_t now) const {
  meta.last_use = now;
  meta.referenced = true;
}

}  // namespace dcat
