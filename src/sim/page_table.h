// Virtual-to-physical address translation for simulated workloads.
//
// Section 2.1 of the paper shows that conflict misses depend on how the OS
// scatters a workload's pages across physical frames: with 4 KiB pages a
// contiguous virtual buffer maps to random frames, so even a working set
// equal to the allocated cache capacity suffers set conflicts; 2 MiB huge
// pages keep 2 MiB runs physically contiguous and mostly eliminate them.
// Three policies reproduce those regimes.
#ifndef SRC_SIM_PAGE_TABLE_H_
#define SRC_SIM_PAGE_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "src/common/rng.h"

namespace dcat {

enum class PagePolicy {
  kContiguous,  // vaddr -> base + vaddr (idealized; zero mapping noise)
  kRandom4K,    // each 4 KiB page gets a uniformly random free frame
  kHuge2M,      // each 2 MiB region gets a random free 2 MiB-aligned frame
};

const char* PagePolicyName(PagePolicy policy);

class PageTable {
 public:
  // `phys_bytes` bounds the simulated physical address space frames are
  // drawn from (a VM's RAM, e.g. 4 GiB). Frames are allocated lazily on
  // first touch, never reused for two virtual pages.
  PageTable(PagePolicy policy, uint64_t phys_bytes, uint64_t seed, uint64_t phys_base = 0);

  uint64_t Translate(uint64_t vaddr);

  PagePolicy policy() const { return policy_; }
  uint64_t PageSize() const;
  size_t mapped_pages() const { return page_to_frame_.size(); }

 private:
  uint64_t FrameFor(uint64_t page_number);

  PagePolicy policy_;
  uint64_t phys_bytes_;
  uint64_t phys_base_;
  Rng rng_;
  std::unordered_map<uint64_t, uint64_t> page_to_frame_;
  std::unordered_set<uint64_t> used_frames_;
};

}  // namespace dcat

#endif  // SRC_SIM_PAGE_TABLE_H_
