#include "src/sim/cache.h"

#include <cstdio>
#include <cstdlib>

namespace dcat {

SetAssociativeCache::SetAssociativeCache(const CacheGeometry& geometry,
                                         ReplacementKind replacement)
    : geometry_(geometry),
      selector_(replacement),
      lines_(static_cast<size_t>(geometry.num_sets) * geometry.num_ways),
      cos_occupancy_(256, 0) {
  if (!geometry.IsValid()) {
    std::fprintf(stderr, "SetAssociativeCache: invalid geometry %s\n",
                 geometry.ToString().c_str());
    std::abort();
  }
}

SetAssociativeCache::Line* SetAssociativeCache::FindLine(uint64_t paddr) {
  const uint32_t set = geometry_.SetIndex(paddr);
  const uint64_t tag = geometry_.Tag(paddr);
  Line* base = &lines_[static_cast<size_t>(set) * geometry_.num_ways];
  for (uint32_t w = 0; w < geometry_.num_ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      return &base[w];
    }
  }
  return nullptr;
}

const SetAssociativeCache::Line* SetAssociativeCache::FindLine(uint64_t paddr) const {
  return const_cast<SetAssociativeCache*>(this)->FindLine(paddr);
}

CacheAccessResult SetAssociativeCache::Access(uint64_t paddr, uint32_t allowed_ways, uint8_t cos,
                                              uint16_t owner, bool allocate_on_miss) {
  CacheAccessResult result;
  ++clock_;
  if (Line* line = FindLine(paddr); line != nullptr) {
    result.hit = true;
    selector_.Touch(line->meta, clock_);
    return result;
  }
  if (!allocate_on_miss) {
    return result;
  }
  allowed_ways &= FullWayMask();
  if (allowed_ways == 0) {
    // A COS must own at least one way (Intel disallows empty masks); treat a
    // zero mask as a cache bypass rather than crashing in release paths.
    return result;
  }

  const uint32_t set = geometry_.SetIndex(paddr);
  Line* base = &lines_[static_cast<size_t>(set) * geometry_.num_ways];
  uint32_t valid_mask = 0;
  LineMeta metas[32];
  for (uint32_t w = 0; w < geometry_.num_ways; ++w) {
    if (base[w].valid) {
      valid_mask |= 1u << w;
    }
    metas[w] = base[w].meta;
  }
  const uint32_t victim = selector_.Select(geometry_.num_ways, valid_mask, allowed_ways, metas);
  // The NRU policy may age reference bits during selection; write them back.
  for (uint32_t w = 0; w < geometry_.num_ways; ++w) {
    base[w].meta = metas[w];
  }

  Line& slot = base[victim];
  if (slot.valid) {
    result.evicted = true;
    result.evicted_paddr = (slot.tag * geometry_.num_sets + set) * geometry_.line_size;
    result.evicted_owner = slot.owner;
    result.evicted_cos = slot.cos;
    --cos_occupancy_[slot.cos];
  }
  slot.valid = true;
  slot.tag = geometry_.Tag(paddr);
  slot.cos = cos;
  slot.owner = owner;
  selector_.Touch(slot.meta, clock_);
  ++cos_occupancy_[cos];
  return result;
}

bool SetAssociativeCache::Contains(uint64_t paddr) const { return FindLine(paddr) != nullptr; }

bool SetAssociativeCache::Invalidate(uint64_t paddr) {
  if (Line* line = FindLine(paddr); line != nullptr) {
    line->valid = false;
    --cos_occupancy_[line->cos];
    return true;
  }
  return false;
}

std::vector<SetAssociativeCache::FlushedLine> SetAssociativeCache::FlushCosOutsideWays(
    uint8_t cos, uint32_t allowed_ways) {
  std::vector<FlushedLine> flushed;
  for (uint32_t set = 0; set < geometry_.num_sets; ++set) {
    Line* base = &lines_[static_cast<size_t>(set) * geometry_.num_ways];
    for (uint32_t w = 0; w < geometry_.num_ways; ++w) {
      Line& line = base[w];
      if (line.valid && line.cos == cos && ((allowed_ways >> w) & 1u) == 0) {
        line.valid = false;
        --cos_occupancy_[cos];
        flushed.push_back(
            {(line.tag * geometry_.num_sets + set) * geometry_.line_size, line.owner});
      }
    }
  }
  return flushed;
}

uint64_t SetAssociativeCache::FlushCos(uint8_t cos) {
  uint64_t flushed = 0;
  for (Line& line : lines_) {
    if (line.valid && line.cos == cos) {
      line.valid = false;
      ++flushed;
    }
  }
  cos_occupancy_[cos] = 0;
  return flushed;
}

void SetAssociativeCache::Reset() {
  for (Line& line : lines_) {
    line.valid = false;
    line.meta = LineMeta{};
  }
  for (uint64_t& occ : cos_occupancy_) {
    occ = 0;
  }
  clock_ = 0;
}

uint64_t SetAssociativeCache::OccupancyLines(uint8_t cos) const { return cos_occupancy_[cos]; }

uint32_t SetAssociativeCache::ValidLinesInSet(uint32_t set_index) const {
  uint32_t count = 0;
  const Line* base = &lines_[static_cast<size_t>(set_index) * geometry_.num_ways];
  for (uint32_t w = 0; w < geometry_.num_ways; ++w) {
    if (base[w].valid) {
      ++count;
    }
  }
  return count;
}

}  // namespace dcat
