#include "src/sim/cache.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace dcat {

SetAssociativeCache::SetAssociativeCache(const CacheGeometry& geometry,
                                         ReplacementKind replacement, uint16_t num_cos)
    : geometry_(geometry),
      selector_(replacement),
      full_way_mask_((geometry.num_ways >= 32) ? 0xffffffffu
                                               : ((1u << geometry.num_ways) - 1)),
      tags_(static_cast<size_t>(geometry.num_sets) * geometry.num_ways, 0),
      line_cos_(tags_.size(), 0),
      line_owner_(tags_.size(), kNoOwner),
      meta_(tags_.size()),
      valid_(geometry.num_sets, 0),
      cos_occupancy_(num_cos, 0) {
  if (!geometry.IsValid()) {
    std::fprintf(stderr, "SetAssociativeCache: invalid geometry %s\n",
                 geometry.ToString().c_str());
    std::abort();
  }
  if (num_cos == 0) {
    std::fprintf(stderr, "SetAssociativeCache: need at least one COS\n");
    std::abort();
  }
}

uint32_t SetAssociativeCache::FindWay(uint32_t set, uint64_t tag) const {
  const uint64_t* tags = &tags_[static_cast<size_t>(set) * geometry_.num_ways];
  uint32_t remaining = valid_[set];
  while (remaining != 0) {
    const uint32_t w = static_cast<uint32_t>(std::countr_zero(remaining));
    if (tags[w] == tag) {
      return w;
    }
    remaining &= remaining - 1;
  }
  return kNoWay;
}

CacheAccessResult SetAssociativeCache::Access(uint64_t paddr, uint32_t allowed_ways, uint8_t cos,
                                              uint16_t owner, bool allocate_on_miss) {
  CacheAccessResult result;
  ++clock_;
  const uint32_t set = geometry_.SetIndex(paddr);
  const uint64_t tag = geometry_.Tag(paddr);
  const size_t base = static_cast<size_t>(set) * geometry_.num_ways;
  if (const uint32_t w = FindWay(set, tag); w != kNoWay) {
    result.hit = true;
    selector_.Touch(meta_[base + w], clock_);
    return result;
  }
  if (!allocate_on_miss) {
    return result;
  }
  allowed_ways &= full_way_mask_;
  if (allowed_ways == 0) {
    // A COS must own at least one way (Intel disallows empty masks); treat a
    // zero mask as a cache bypass rather than crashing in release paths.
    return result;
  }
  assert(cos < cos_occupancy_.size());

  // The selector reads (and, for NRU aging, writes) the per-set meta slice
  // in place — no copy, no write-back.
  const uint32_t valid_mask = valid_[set];
  const uint32_t victim =
      selector_.Select(geometry_.num_ways, valid_mask, allowed_ways, &meta_[base]);
  const size_t slot = base + victim;
  if ((valid_mask >> victim) & 1u) {
    result.evicted = true;
    result.evicted_paddr = LinePaddr(set, tags_[slot]);
    result.evicted_owner = line_owner_[slot];
    result.evicted_cos = line_cos_[slot];
    --cos_occupancy_[line_cos_[slot]];
  }
  valid_[set] = valid_mask | (1u << victim);
  tags_[slot] = tag;
  line_cos_[slot] = cos;
  line_owner_[slot] = owner;
  selector_.Touch(meta_[slot], clock_);
  ++cos_occupancy_[cos];
  return result;
}

bool SetAssociativeCache::Contains(uint64_t paddr) const {
  return FindWay(geometry_.SetIndex(paddr), geometry_.Tag(paddr)) != kNoWay;
}

bool SetAssociativeCache::Invalidate(uint64_t paddr) {
  const uint32_t set = geometry_.SetIndex(paddr);
  const uint32_t w = FindWay(set, geometry_.Tag(paddr));
  if (w == kNoWay) {
    return false;
  }
  valid_[set] &= ~(1u << w);
  assert(line_cos_[static_cast<size_t>(set) * geometry_.num_ways + w] < cos_occupancy_.size());
  --cos_occupancy_[line_cos_[static_cast<size_t>(set) * geometry_.num_ways + w]];
  return true;
}

std::vector<SetAssociativeCache::FlushedLine> SetAssociativeCache::FlushCosOutsideWays(
    uint8_t cos, uint32_t allowed_ways) {
  std::vector<FlushedLine> flushed;
  for (uint32_t set = 0; set < geometry_.num_sets; ++set) {
    const size_t base = static_cast<size_t>(set) * geometry_.num_ways;
    uint32_t remaining = valid_[set] & ~allowed_ways;
    while (remaining != 0) {
      const uint32_t w = static_cast<uint32_t>(std::countr_zero(remaining));
      remaining &= remaining - 1;
      if (line_cos_[base + w] != cos) {
        continue;
      }
      valid_[set] &= ~(1u << w);
      --cos_occupancy_[cos];
      flushed.push_back({LinePaddr(set, tags_[base + w]), line_owner_[base + w]});
    }
  }
  return flushed;
}

std::vector<SetAssociativeCache::FlushedLine> SetAssociativeCache::FlushCos(uint8_t cos) {
  // Flushing the whole COS == flushing it outside an empty mask.
  return FlushCosOutsideWays(cos, 0);
}

void SetAssociativeCache::Reset() {
  std::fill(valid_.begin(), valid_.end(), 0u);
  std::fill(meta_.begin(), meta_.end(), LineMeta{});
  std::fill(cos_occupancy_.begin(), cos_occupancy_.end(), 0u);
  clock_ = 0;
}

uint64_t SetAssociativeCache::OccupancyLines(uint8_t cos) const {
  assert(cos < cos_occupancy_.size());
  return cos_occupancy_[cos];
}

uint32_t SetAssociativeCache::ValidLinesInSet(uint32_t set_index) const {
  return static_cast<uint32_t>(std::popcount(valid_[set_index]));
}

}  // namespace dcat
