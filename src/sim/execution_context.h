// Binds a workload's virtual address space to a core.
//
// Workloads issue virtual-address reads/writes and compute instructions;
// the context translates through the VM's page table and drives the core's
// memory hierarchy. A multi-vCPU workload holds one context per core, all
// sharing one page table (one guest physical address space).
#ifndef SRC_SIM_EXECUTION_CONTEXT_H_
#define SRC_SIM_EXECUTION_CONTEXT_H_

#include <cstdint>

#include "src/sim/core.h"
#include "src/sim/page_table.h"

namespace dcat {

class ExecutionContext {
 public:
  ExecutionContext(Core* core, PageTable* page_table) : core_(core), page_table_(page_table) {}

  Core& core() { return *core_; }
  const Core& core() const { return *core_; }
  PageTable& page_table() { return *page_table_; }

  // One load/store instruction; returns latency in cycles.
  double Read(uint64_t vaddr) { return core_->Access(page_table_->Translate(vaddr), false); }
  double Write(uint64_t vaddr) { return core_->Access(page_table_->Translate(vaddr), true); }

  // `n` ALU/branch instructions.
  void Compute(uint64_t n) { core_->Compute(n); }

 private:
  Core* core_;            // not owned
  PageTable* page_table_;  // not owned
};

}  // namespace dcat

#endif  // SRC_SIM_EXECUTION_CONTEXT_H_
