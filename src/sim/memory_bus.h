// Shared memory-bus (DRAM bandwidth) model with MBA-style throttling.
//
// The paper's controller manages only cache capacity; its §7 surveys the
// adjacent isolation problem — bandwidth. Intel RDT exposes Memory
// Bandwidth Allocation (MBA) for it, and this model adds both halves to
// the simulator as an opt-in extension:
//
//   * contention: per interval, the bus computes its utilization from the
//     DRAM transfers the cores generated and derives a queueing-delay
//     multiplier applied to every DRAM access of the NEXT interval
//     (1/(1-u) shape, one-interval feedback lag);
//   * MBA throttle: per-COS delay levels (100% = unthrottled, 10% = max
//     delay), modeled as a multiplier on that COS's DRAM latency — the
//     same abstraction Intel documents (programmable request-rate delay);
//   * MBM monitoring: cumulative per-COS DRAM traffic in bytes. Unlike the
//     two control halves, monitoring is always on (real RDT exposes MBM
//     counters independently of MBA) — the controller's counter-anomaly
//     quarantine uses it as a second, independent liveness signal.
//
// Disabled (the default) the contention/throttle model costs nothing and
// changes nothing; only the byte counters tick.
#ifndef SRC_SIM_MEMORY_BUS_H_
#define SRC_SIM_MEMORY_BUS_H_

#include <cstdint>
#include <vector>

namespace dcat {

struct MemoryBusConfig {
  bool enabled = false;
  // Peak DRAM bandwidth in bytes per core cycle. 26 B/cycle at 2.3 GHz is
  // ~60 GB/s — quad-channel DDR4, the paper's machine class.
  double bytes_per_cycle = 26.0;
  // Shapes the queueing curve: multiplier = 1 + coeff * u / (1 - u).
  double contention_coefficient = 0.5;
  // Utilization is clamped here to keep the multiplier finite.
  double max_utilization = 0.90;
};

class MemoryBus {
 public:
  MemoryBus(const MemoryBusConfig& config, uint32_t line_size, uint8_t num_cos);

  bool enabled() const { return config_.enabled; }

  // Records one line transfer charged to `cos`. Returns the DRAM latency
  // multiplier currently in force for that COS (contention x throttle).
  double NoteTransfer(uint8_t cos);

  // Interval boundary: folds the transfers of the elapsed `cycles` into
  // the utilization estimate for the next interval.
  void AdvanceInterval(double cycles);

  // --- MBA control surface ---
  // Throttle in percent of full bandwidth, 10..100 (Intel's granularity is
  // platform-specific; any value in range is accepted). Values outside the
  // range are clamped.
  void SetThrottle(uint8_t cos, uint32_t percent);
  uint32_t GetThrottle(uint8_t cos) const { return throttle_percent_.at(cos); }

  // --- MBM monitoring ---
  uint64_t TotalBytes(uint8_t cos) const { return cos_bytes_.at(cos); }

  // Hybrid-fidelity fast path: credits `lines` modeled DRAM transfers to
  // `cos` in one call, keeping the MBM byte counters live while a tenant is
  // advanced analytically (the controller's quarantine reads MBM as an
  // independent liveness signal). Transfers count toward the contention
  // estimate exactly as line-level NoteTransfer calls would.
  void CreditModeledTransfers(uint8_t cos, uint64_t lines) {
    cos_bytes_.at(cos) += lines * line_size_;
    interval_transfers_ += lines;
  }

  // Introspection.
  double utilization() const { return utilization_; }
  double contention_multiplier() const { return contention_multiplier_; }

 private:
  MemoryBusConfig config_;
  uint32_t line_size_;
  uint64_t interval_transfers_ = 0;
  double utilization_ = 0.0;
  double contention_multiplier_ = 1.0;
  std::vector<uint32_t> throttle_percent_;
  std::vector<uint64_t> cos_bytes_;
};

}  // namespace dcat

#endif  // SRC_SIM_MEMORY_BUS_H_
