#include "src/sim/socket.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace dcat {

SocketConfig SocketConfig::XeonE5() {
  SocketConfig config;
  config.num_cores = 18;
  config.llc_geometry = XeonE5LlcGeometry();
  return config;
}

SocketConfig SocketConfig::XeonD() {
  SocketConfig config;
  config.num_cores = 8;
  config.llc_geometry = XeonDLlcGeometry();
  return config;
}

Socket::Socket(const SocketConfig& config)
    : config_(config),
      llc_(config.llc_geometry, config.llc_replacement, config.num_cos),
      bus_(config.memory_bus, config.llc_geometry.line_size, config.num_cos),
      cos_masks_(config.num_cos, llc_.FullWayMask()),
      core_cos_(config.num_cores, 0) {
  if (config_.num_cores == 0 || config_.num_cos == 0) {
    std::fprintf(stderr, "Socket: need at least one core and one COS\n");
    std::abort();
  }
  cores_.reserve(config_.num_cores);
  for (uint16_t i = 0; i < config_.num_cores; ++i) {
    cores_.push_back(std::make_unique<Core>(i, config_.l1_geometry, config_.l2_geometry,
                                            config_.model_l2, config_.timing, this));
  }
}

void Socket::SetCosMask(uint8_t cos, uint32_t mask) {
  if (cos >= config_.num_cos) {
    std::fprintf(stderr, "Socket::SetCosMask: COS %u out of range\n", cos);
    std::abort();
  }
  cos_masks_.at(cos) = mask & llc_.FullWayMask();
}

void Socket::AssignCoreToCos(uint16_t core_id, uint8_t cos) {
  if (cos >= config_.num_cos) {
    std::fprintf(stderr, "Socket::AssignCoreToCos: COS %u out of range\n", cos);
    std::abort();
  }
  core_cos_.at(core_id) = cos;
}

uint64_t Socket::FlushCosOutsideMask(uint8_t cos, uint32_t mask) {
  const auto flushed = llc_.FlushCosOutsideWays(cos, mask);
  for (const auto& line : flushed) {
    if (line.owner != kNoOwner && line.owner < config_.num_cores) {
      cores_[line.owner]->BackInvalidate(line.paddr);
    }
  }
  return flushed.size();
}

uint64_t Socket::FlushCos(uint8_t cos) {
  const auto flushed = llc_.FlushCos(cos);
  for (const auto& line : flushed) {
    if (line.owner != kNoOwner && line.owner < config_.num_cores) {
      cores_[line.owner]->BackInvalidate(line.paddr);
    }
  }
  return flushed.size();
}

Socket::LlcOutcome Socket::AccessLlc(uint16_t core_id, uint64_t paddr) {
  // Hot path: called on every simulated L2 miss. core_id comes from our own
  // Core objects and COS values are range-checked at assignment time, so
  // debug asserts replace the old per-access .at() bounds checks.
  assert(core_id < core_cos_.size());
  const uint8_t cos = core_cos_[core_id];
  assert(cos < cos_masks_.size());
  const CacheAccessResult result = llc_.Access(paddr, cos_masks_[cos], cos, core_id);
  if (result.evicted && result.evicted_owner != kNoOwner &&
      result.evicted_owner < config_.num_cores) {
    // Inclusive LLC: a line leaving the LLC must leave the private caches of
    // the core that brought it in.
    cores_[result.evicted_owner]->BackInvalidate(result.evicted_paddr);
  }
  LlcOutcome outcome;
  outcome.hit = result.hit;
  if (!result.hit) {
    outcome.dram_factor = bus_.NoteTransfer(cos);
  }
  return outcome;
}

void Socket::ResetCaches() {
  llc_.Reset();
  for (auto& core : cores_) {
    core->ResetCaches();
  }
}

}  // namespace dcat
