// Cache geometry descriptions for the socket simulator.
//
// The paper evaluates on two Intel Broadwell parts:
//   * Xeon-D:     8 cores, 12-way 12 MiB LLC
//   * Xeon E5 v4: 18 cores, 20-way 45 MiB LLC (2.25 MiB per way)
// Presets for both are provided so the benchmarks can reference the exact
// machines from the paper.
#ifndef SRC_SIM_GEOMETRY_H_
#define SRC_SIM_GEOMETRY_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dcat {

struct CacheGeometry {
  uint32_t line_size = 64;  // bytes; must be a power of two
  uint32_t num_ways = 8;
  uint32_t num_sets = 64;  // need not be a power of two (sliced LLCs are not)

  constexpr uint64_t CapacityBytes() const {
    return static_cast<uint64_t>(line_size) * num_ways * num_sets;
  }
  constexpr uint64_t WayCapacityBytes() const {
    return static_cast<uint64_t>(line_size) * num_sets;
  }

  // Line-granular physical address decomposition.
  constexpr uint64_t LineNumber(uint64_t paddr) const { return paddr / line_size; }
  constexpr uint32_t SetIndex(uint64_t paddr) const {
    return static_cast<uint32_t>(LineNumber(paddr) % num_sets);
  }
  constexpr uint64_t Tag(uint64_t paddr) const { return LineNumber(paddr) / num_sets; }

  bool IsValid() const;
  std::string ToString() const;

  bool operator==(const CacheGeometry&) const = default;
};

// Derives a geometry from (capacity, ways, line size); capacity must divide
// evenly. Dies on invalid input (programming error).
CacheGeometry MakeGeometry(uint64_t capacity_bytes, uint32_t num_ways, uint32_t line_size = 64);

// Machine presets used throughout the paper's evaluation.

// 32 KiB 8-way L1D (both machines).
CacheGeometry L1dGeometry();
// 256 KiB 8-way private L2 (both machines).
CacheGeometry L2Geometry();
// Xeon-D: 12-way 12 MiB LLC.
CacheGeometry XeonDLlcGeometry();
// Xeon E5-2697 v4: 20-way 45 MiB LLC (2.25 MiB per way).
CacheGeometry XeonE5LlcGeometry();

}  // namespace dcat

#endif  // SRC_SIM_GEOMETRY_H_
