#include "src/sim/memory_bus.h"

#include <algorithm>

namespace dcat {

MemoryBus::MemoryBus(const MemoryBusConfig& config, uint32_t line_size, uint8_t num_cos)
    : config_(config),
      line_size_(line_size),
      throttle_percent_(num_cos, 100),
      cos_bytes_(num_cos, 0) {}

double MemoryBus::NoteTransfer(uint8_t cos) {
  // MBM-style byte accounting is monitoring, not control: it runs even when
  // the contention/MBA model is disabled (on real RDT hardware the MBM
  // counters exist independently of MBA). It has no effect on timing.
  cos_bytes_.at(cos) += line_size_;
  if (!config_.enabled) {
    return 1.0;
  }
  ++interval_transfers_;
  const double throttle =
      100.0 / static_cast<double>(std::max(throttle_percent_.at(cos), 1u));
  return contention_multiplier_ * throttle;
}

void MemoryBus::AdvanceInterval(double cycles) {
  if (!config_.enabled || cycles <= 0.0) {
    interval_transfers_ = 0;
    return;
  }
  const double bytes = static_cast<double>(interval_transfers_) * line_size_;
  const double capacity = cycles * config_.bytes_per_cycle;
  utilization_ = std::min(bytes / capacity, config_.max_utilization);
  contention_multiplier_ =
      1.0 + config_.contention_coefficient * utilization_ / (1.0 - utilization_);
  interval_transfers_ = 0;
}

void MemoryBus::SetThrottle(uint8_t cos, uint32_t percent) {
  throttle_percent_.at(cos) = std::clamp(percent, 10u, 100u);
}

}  // namespace dcat
