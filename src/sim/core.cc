#include "src/sim/core.h"

#include "src/sim/socket.h"

namespace dcat {

Core::Core(uint16_t id, const CacheGeometry& l1_geometry, const CacheGeometry& l2_geometry,
           bool model_l2, const TimingModel& timing, Socket* socket)
    : id_(id),
      model_l2_(model_l2),
      timing_(timing),
      socket_(socket),
      l1_(l1_geometry),
      l2_(l2_geometry) {}

double Core::Access(uint64_t paddr, bool write) {
  (void)write;  // the latency model treats loads and stores identically
  ++counters_.retired_instructions;
  ++counters_.l1_references;

  if (l1_.Access(paddr, l1_.FullWayMask()).hit) {
    counters_.unhalted_cycles += timing_.l1_hit_cycles;
    return timing_.l1_hit_cycles;
  }
  ++counters_.l1_misses;

  if (model_l2_) {
    ++counters_.l2_references;
    if (l2_.Access(paddr, l2_.FullWayMask()).hit) {
      l1_.Access(paddr, l1_.FullWayMask());  // refill L1
      counters_.unhalted_cycles += timing_.l2_hit_cycles;
      return timing_.l2_hit_cycles;
    }
    ++counters_.l2_misses;
  }

  ++counters_.llc_references;
  const Socket::LlcOutcome outcome = socket_->AccessLlc(id_, paddr);
  double latency = 0.0;
  if (outcome.hit) {
    latency = timing_.llc_hit_cycles;
  } else {
    ++counters_.llc_misses;
    const uint64_t line = paddr / l1_.geometry().line_size;
    double dram = timing_.dram_cycles /
                  (timing_.dram_parallelism > 0 ? timing_.dram_parallelism : 1.0);
    if (last_llc_miss_line_ != ~0ull && line == last_llc_miss_line_ + 1 &&
        timing_.stream_prefetch_factor > 1.0) {
      // Sequential miss stream: the prefetcher hides most of the DRAM trip.
      dram /= timing_.stream_prefetch_factor;
    }
    last_llc_miss_line_ = line;
    // Bus contention and MBA throttling scale the DRAM trip (1.0 when the
    // bandwidth model is disabled).
    latency = timing_.llc_hit_cycles + dram * outcome.dram_factor;
  }
  // Refill the private hierarchy on the way back.
  if (model_l2_) {
    l2_.Access(paddr, l2_.FullWayMask());
  }
  l1_.Access(paddr, l1_.FullWayMask());
  counters_.unhalted_cycles += latency;
  return latency;
}

void Core::Compute(uint64_t n) {
  counters_.retired_instructions += n;
  counters_.unhalted_cycles += timing_.base_cpi * static_cast<double>(n);
}

void Core::Idle(double cycles) { idle_cycles_ += cycles; }

void Core::BackInvalidate(uint64_t paddr) {
  l1_.Invalidate(paddr);
  if (model_l2_) {
    l2_.Invalidate(paddr);
  }
}

void Core::ResetCaches() {
  l1_.Reset();
  l2_.Reset();
}

}  // namespace dcat
