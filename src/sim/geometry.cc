#include "src/sim/geometry.h"

#include <cstdio>
#include <cstdlib>

#include "src/common/units.h"

namespace dcat {

bool CacheGeometry::IsValid() const {
  const bool line_pow2 = line_size != 0 && (line_size & (line_size - 1)) == 0;
  return line_pow2 && num_ways >= 1 && num_ways <= 32 && num_sets >= 1;
}

std::string CacheGeometry::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%u-way x %u sets x %uB (%.2f MiB)", num_ways, num_sets,
                line_size, static_cast<double>(CapacityBytes()) / static_cast<double>(kMiB));
  return buf;
}

CacheGeometry MakeGeometry(uint64_t capacity_bytes, uint32_t num_ways, uint32_t line_size) {
  const uint64_t way_bytes = num_ways == 0 ? 0 : capacity_bytes / num_ways;
  if (num_ways == 0 || line_size == 0 || capacity_bytes % num_ways != 0 ||
      way_bytes % line_size != 0) {
    std::fprintf(stderr, "MakeGeometry: capacity %llu not divisible into %u ways of %uB lines\n",
                 static_cast<unsigned long long>(capacity_bytes), num_ways, line_size);
    std::abort();
  }
  CacheGeometry geo;
  geo.line_size = line_size;
  geo.num_ways = num_ways;
  geo.num_sets = static_cast<uint32_t>(way_bytes / line_size);
  return geo;
}

CacheGeometry L1dGeometry() { return MakeGeometry(32_KiB, 8); }

CacheGeometry L2Geometry() { return MakeGeometry(256_KiB, 8); }

CacheGeometry XeonDLlcGeometry() { return MakeGeometry(12_MiB, 12); }

CacheGeometry XeonE5LlcGeometry() { return MakeGeometry(45_MiB, 20); }

}  // namespace dcat
