// The simulated processor socket: cores + shared, way-partitioned LLC.
//
// This is the stand-in for the Xeon hardware the paper runs on. The socket
// exposes exactly the knobs Intel RDT exposes:
//   * a class-of-service (COS) table: COS -> capacity way mask,
//   * a core association table: core -> COS,
//   * monitoring: per-core counters and per-COS LLC occupancy.
// The pqos layer (src/pqos/) wraps these in the library-level API dCat uses.
#ifndef SRC_SIM_SOCKET_H_
#define SRC_SIM_SOCKET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/cache.h"
#include "src/sim/core.h"
#include "src/sim/geometry.h"
#include "src/sim/memory_bus.h"
#include "src/sim/replacement.h"
#include "src/sim/timing.h"

namespace dcat {

struct SocketConfig {
  uint16_t num_cores = 18;
  CacheGeometry llc_geometry = XeonE5LlcGeometry();
  CacheGeometry l1_geometry = L1dGeometry();
  CacheGeometry l2_geometry = L2Geometry();
  // The L2 can be disabled to study its effect on LLC reference counts
  // (bench_ablation); the paper's machines have one.
  bool model_l2 = true;
  TimingModel timing;
  // NRU (QLRU-like) matches Broadwell LLC behaviour under streaming scans;
  // the private L1/L2 use true LRU.
  ReplacementKind llc_replacement = ReplacementKind::kNru;
  uint8_t num_cos = 16;  // Intel Xeon supports up to 16 classes of service
  // Optional DRAM bandwidth contention + MBA model (off by default).
  MemoryBusConfig memory_bus;

  // Convenience presets matching the two evaluation machines.
  static SocketConfig XeonE5();
  static SocketConfig XeonD();
};

class Socket {
 public:
  explicit Socket(const SocketConfig& config);

  const SocketConfig& config() const { return config_; }
  uint16_t num_cores() const { return config_.num_cores; }
  uint32_t num_ways() const { return config_.llc_geometry.num_ways; }
  uint8_t num_cos() const { return config_.num_cos; }

  Core& core(uint16_t id) { return *cores_.at(id); }
  const Core& core(uint16_t id) const { return *cores_.at(id); }
  SetAssociativeCache& llc() { return llc_; }
  const SetAssociativeCache& llc() const { return llc_; }

  // --- CAT control surface (used by pqos::SimPqos) ---
  // Masks are validated by the pqos layer (contiguous, non-empty); the
  // socket itself only requires them to fit the LLC's way count.
  void SetCosMask(uint8_t cos, uint32_t mask);
  uint32_t CosMask(uint8_t cos) const { return cos_masks_.at(cos); }
  void AssignCoreToCos(uint16_t core_id, uint8_t cos);
  uint8_t CoreCos(uint16_t core_id) const { return core_cos_.at(core_id); }

  // Flushes the COS's lines that sit outside `mask` and back-invalidates
  // their owners' private caches. Models the user-level cache-flush
  // application the paper's §6 prescribes for shrinking allocations (Intel
  // has no way-flush instruction). Returns the number of lines flushed.
  uint64_t FlushCosOutsideMask(uint8_t cos, uint32_t mask);

  // Flushes ALL of the COS's LLC lines and back-invalidates their owners'
  // private caches — the inclusive-LLC contract a line leaving the LLC must
  // honor everywhere, not just on mask shrinks. Returns the lines flushed.
  uint64_t FlushCos(uint8_t cos);

  // --- monitoring ---
  uint64_t LlcOccupancyBytes(uint8_t cos) const { return llc_.OccupancyBytes(cos); }

  // Internal: LLC access on behalf of `core_id` (called by Core on L2 miss).
  // Handles the fill under the core's COS mask, inclusive back-invalidation
  // of the evicted line's owner, and — on miss — memory-bus accounting.
  // `dram_factor` is the DRAM latency multiplier in force for the core's
  // COS (1.0 unless the memory-bus model is enabled).
  struct LlcOutcome {
    bool hit = false;
    double dram_factor = 1.0;
  };
  LlcOutcome AccessLlc(uint16_t core_id, uint64_t paddr);

  // Memory-bus surface (MBA-style throttling + MBM monitoring).
  MemoryBus& memory_bus() { return bus_; }
  const MemoryBus& memory_bus() const { return bus_; }
  // Interval boundary for the bandwidth model; no-op when disabled.
  void AdvanceInterval(double cycles) { bus_.AdvanceInterval(cycles); }

  // Drops all cache contents (LLC + private caches of every core).
  void ResetCaches();

 private:
  SocketConfig config_;
  SetAssociativeCache llc_;
  MemoryBus bus_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<uint32_t> cos_masks_;
  std::vector<uint8_t> core_cos_;
};

}  // namespace dcat

#endif  // SRC_SIM_SOCKET_H_
