// Cold-restart reconciliation: journal in, running controller out.
//
// RecoverController is the single entry point a restarted daemon (or the
// crash harness) calls instead of constructing a DcatController directly:
//
//   1. Parse the journal: CRC-valid records survive, torn/corrupt regions
//      are counted and skipped, and the *last decodable* record wins (every
//      record is a full self-contained image).
//   2. No usable record -> cold boot: an empty controller at
//      `cold_boot_tick`, ready for the host to re-admit its inventory.
//   3. Policy mismatch between the journal and the configured policy ->
//      fail fast (nullptr + kError): silently adopting allocations decided
//      under a different policy would violate the operator's intent.
//   4. Otherwise import the image and reconcile against the live backend
//      (DcatController::CompleteRecovery): adopt hardware that matches the
//      journaled intent, finish interrupted writes, park divergent tenants
//      in Reclaim for the normal machinery.
//   5. Emit RestartEvent to every sink, restart the journal from the
//      reconciled image, and hand the controller back ready to Tick().
#ifndef SRC_RECOVERY_RECOVERY_H_
#define SRC_RECOVERY_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/dcat_controller.h"
#include "src/recovery/journal.h"
#include "src/telemetry/events.h"

namespace dcat {

struct RecoveryOptions {
  DcatConfig config;
  // Event sinks registered on the restored controller (borrowed); the
  // RestartEvent is delivered to them before the first post-restart tick.
  std::vector<EventSink*> sinks;
  // Tick a cold boot resumes at (a restarted daemon knows wall time even
  // when the journal is gone).
  uint64_t cold_boot_tick = 0;
  // Restarts that happened before this one (host-tracked); keeps
  // controller.restarts_total monotonic across a metrics registry that
  // dies with the process.
  uint64_t prior_restarts = 0;
  // Journal to resume writing to (typically the JournalWriter over the
  // same storage being recovered from). Attached to the controller and
  // rewound to the reconciled image. May be null.
  ControllerJournal* journal = nullptr;
};

enum class RecoveryOutcome {
  kColdBoot,   // no usable journal record; empty controller returned
  kRecovered,  // journaled image adopted and reconciled
  kError,      // unrecoverable mismatch; no controller returned
};

struct RecoveryReport {
  RecoveryOutcome outcome = RecoveryOutcome::kColdBoot;
  std::string error;
  uint64_t records_scanned = 0;  // CRC-valid records in the journal
  uint64_t torn_records = 0;     // corrupt regions skipped (incl. torn tail)
  uint64_t journal_tick = 0;     // tick of the adopted record (0 on cold boot)
  // True when the adopted record was a decision (recovery rolled the
  // interrupted tick's intent forward); false for an at-rest snapshot.
  bool had_intent = false;
  uint32_t tenants = 0;
  DcatController::RecoveryApplyStats apply;
};

// Builds a controller from the journal per the flow above. Returns nullptr
// only for kError. `report` is always filled when provided.
std::unique_ptr<DcatController> RecoverController(CatController* cat,
                                                  const MonitoringProvider* monitor,
                                                  JournalStorage* storage,
                                                  const RecoveryOptions& options,
                                                  RecoveryReport* report = nullptr);

}  // namespace dcat

#endif  // SRC_RECOVERY_RECOVERY_H_
