#include "src/recovery/recovery.h"

#include <utility>

#include "src/recovery/state_codec.h"

namespace dcat {
namespace {

// Restart/journal counters use the loop-increment idiom (counters are
// monotonic by contract; there is no Add()).
void IncrementBy(MetricsRegistry& metrics, const char* name, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    metrics.counter(name).Increment();
  }
}

}  // namespace

std::unique_ptr<DcatController> RecoverController(CatController* cat,
                                                  const MonitoringProvider* monitor,
                                                  JournalStorage* storage,
                                                  const RecoveryOptions& options,
                                                  RecoveryReport* report) {
  RecoveryReport local;
  RecoveryReport& out = report != nullptr ? *report : local;
  out = RecoveryReport{};

  const JournalParseResult parsed = ParseJournal(storage->ReadAll());
  out.records_scanned = parsed.records.size();
  out.torn_records = parsed.torn_records;

  // The last decodable record wins; a record whose CRC held but whose
  // payload does not decode (schema drift) counts as torn and the scan
  // keeps walking backwards.
  ControllerPersistentState state;
  DecisionIntent intent;
  bool have_state = false;
  bool have_intent = false;
  for (auto it = parsed.records.rbegin(); it != parsed.records.rend(); ++it) {
    if (it->type == JournalRecordType::kDecision) {
      if (DecodeDecisionRecord(it->payload.data(), it->payload.size(), &state, &intent)) {
        have_state = true;
        have_intent = true;
        break;
      }
    } else if (DecodeControllerState(it->payload.data(), it->payload.size(), &state)) {
      have_state = true;
      break;
    }
    ++out.torn_records;
  }

  auto controller = std::make_unique<DcatController>(cat, monitor, options.config);
  if (have_state && state.policy != controller->policy().name()) {
    // Allocations decided under a different policy must not be silently
    // adopted; the operator changed intent, so the journal is void.
    out.outcome = RecoveryOutcome::kError;
    out.error = "journal policy '" + state.policy + "' does not match configured policy '" +
                controller->policy().name() + "'";
    return nullptr;
  }

  if (!have_state) {
    // Cold boot: an empty image at the host-provided tick. The host
    // re-admits its inventory afterwards (contracts live outside the
    // controller).
    state = ControllerPersistentState{};
    state.tick = options.cold_boot_tick;
    state.policy = controller->policy().name();
  }
  controller->ImportState(state);
  for (EventSink* sink : options.sinks) {
    controller->AddEventSink(sink);
  }

  out.outcome = have_state ? RecoveryOutcome::kRecovered : RecoveryOutcome::kColdBoot;
  out.journal_tick = have_state ? state.tick : 0;
  out.had_intent = have_intent;
  out.tenants = static_cast<uint32_t>(state.tenants.size());

  const RestartEvent restart{.tick = state.tick,
                             .cold_boot = !have_state,
                             .degraded = state.degraded,
                             .journal_records = out.records_scanned,
                             .torn_records = out.torn_records,
                             .tenants = out.tenants};
  for (EventSink* sink : options.sinks) {
    sink->OnRestart(restart);
  }

  MetricsRegistry& metrics = controller->metrics();
  IncrementBy(metrics, "controller.restarts_total", options.prior_restarts + 1);
  IncrementBy(metrics, "journal.records_total", out.records_scanned);
  IncrementBy(metrics, "journal.torn_records_total", out.torn_records);

  if (have_state) {
    out.apply = controller->CompleteRecovery(have_intent ? &intent : nullptr);
  }

  if (options.journal != nullptr) {
    // Restart the journal from the reconciled truth, then resume
    // write-ahead operation.
    options.journal->OnRecovered(controller->ExportState());
    controller->AttachJournal(options.journal);
  }
  return controller;
}

}  // namespace dcat
