// Binary codec for the controller's persistent state (journal payloads).
//
// The journal stores full, self-contained controller images (see
// src/core/controller_state.h), so the codec is a straightforward
// length-prefixed flattening. Two properties matter:
//
//   * Bit-exact doubles. Every floating-point field is serialized as its
//     IEEE-754 bit pattern (little-endian u64), so a decode(encode(x))
//     round trip reproduces the controller's decision inputs exactly —
//     "close enough" doubles would make a restored controller diverge from
//     the uninterrupted trace.
//   * Hostile input. Decoding is bounds-checked at every read and
//     validates enums and counts; a corrupt payload (bit rot the record
//     CRC happened to miss, or a truncated snapshot) returns false, never
//     crashes, and never allocates unbounded memory.
#ifndef SRC_RECOVERY_STATE_CODEC_H_
#define SRC_RECOVERY_STATE_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/controller_state.h"

namespace dcat {

// Codec schema version; bumped on any layout change. A decoder seeing an
// unknown version refuses the payload (recovery falls back to cold boot).
inline constexpr uint32_t kStateCodecVersion = 1;

// Little-endian append-only byte sink.
class ByteWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  // IEEE-754 bit pattern, little-endian.
  void F64(double v);
  void Str(const std::string& s);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

// Bounds-checked reader over a borrowed buffer. Every accessor returns
// false once any prior read failed (sticky), so decode code can chain
// reads and check once.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* v);
  bool U16(uint16_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool F64(double* v);
  bool Str(std::string* s);

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool Take(size_t n, const uint8_t** out);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Snapshot payload: the controller image alone.
std::vector<uint8_t> EncodeControllerState(const ControllerPersistentState& state);
bool DecodeControllerState(const uint8_t* data, size_t size,
                           ControllerPersistentState* out);

// Decision payload: the pre-apply image plus the tick's allocation intent.
std::vector<uint8_t> EncodeDecisionRecord(const ControllerPersistentState& state,
                                          const DecisionIntent& intent);
bool DecodeDecisionRecord(const uint8_t* data, size_t size,
                          ControllerPersistentState* state, DecisionIntent* intent);

}  // namespace dcat

#endif  // SRC_RECOVERY_STATE_CODEC_H_
