#include "src/recovery/state_codec.h"

#include <cstring>

namespace dcat {
namespace {

// Every variable-length count is checked against the bytes that could
// possibly back it (each element costs at least one byte), so a corrupt
// count can never drive an allocation past the payload size.
bool CountPlausible(const ByteReader& reader, uint64_t count) {
  return count <= reader.remaining();
}

void WriteCounters(ByteWriter& w, const PerfCounterBlock& c) {
  w.U64(c.retired_instructions);
  w.U64(c.l1_references);
  w.U64(c.l1_misses);
  w.U64(c.l2_references);
  w.U64(c.l2_misses);
  w.U64(c.llc_references);
  w.U64(c.llc_misses);
  w.F64(c.unhalted_cycles);
}

bool ReadCounters(ByteReader& r, PerfCounterBlock* c) {
  return r.U64(&c->retired_instructions) && r.U64(&c->l1_references) &&
         r.U64(&c->l1_misses) && r.U64(&c->l2_references) && r.U64(&c->l2_misses) &&
         r.U64(&c->llc_references) && r.U64(&c->llc_misses) && r.F64(&c->unhalted_cycles);
}

void WriteTenant(ByteWriter& w, const PersistentTenant& t) {
  w.U32(t.spec.id);
  w.Str(t.spec.name);
  w.U32(static_cast<uint32_t>(t.spec.cores.size()));
  for (uint16_t core : t.spec.cores) {
    w.U16(core);
  }
  w.U32(t.spec.baseline_ways);
  w.U8(t.cos);
  w.U32(t.group);
  w.U8(static_cast<uint8_t>(t.category));
  w.U32(t.ways);
  w.U32(t.mask);
  WriteCounters(w, t.last_counters);
  w.U8(t.detector_has_signature ? 1 : 0);
  w.U8(t.detector_idle ? 1 : 0);
  w.F64(t.detector_signature);
  w.U32(static_cast<uint32_t>(t.phases.size()));
  for (const PersistentPhaseRecord& p : t.phases) {
    w.F64(p.signature);
    w.F64(p.baseline_ipc);
    w.U8(p.baseline_valid ? 1 : 0);
    w.U32(static_cast<uint32_t>(p.table.size()));
    for (const auto& [ways, norm_ipc] : p.table) {
      w.U32(ways);
      w.F64(norm_ipc);
    }
  }
  w.U64(t.phase_index);
  w.U8(t.has_phase ? 1 : 0);
  w.U8(t.measuring_baseline ? 1 : 0);
  w.F64(t.last_ipc);
  w.U8(t.has_last_ipc ? 1 : 0);
  w.U32(t.prev_interval_ways);
  w.U8(t.grow_denied ? 1 : 0);
  w.U32(t.anomaly_streak);
  w.U8(t.prev_active ? 1 : 0);
  w.U64(t.last_mbm);
}

bool ReadBool(ByteReader& r, bool* out) {
  uint8_t v = 0;
  if (!r.U8(&v) || v > 1) {
    return false;
  }
  *out = v != 0;
  return true;
}

bool ReadTenant(ByteReader& r, PersistentTenant* t) {
  uint32_t core_count = 0;
  if (!r.U32(&t->spec.id) || !r.Str(&t->spec.name) || !r.U32(&core_count) ||
      !CountPlausible(r, core_count)) {
    return false;
  }
  t->spec.cores.resize(core_count);
  for (uint16_t& core : t->spec.cores) {
    if (!r.U16(&core)) {
      return false;
    }
  }
  uint8_t category = 0;
  if (!r.U32(&t->spec.baseline_ways) || !r.U8(&t->cos) || !r.U32(&t->group) ||
      !r.U8(&category) || category > static_cast<uint8_t>(Category::kUnknown) ||
      !r.U32(&t->ways) || !r.U32(&t->mask) || !ReadCounters(r, &t->last_counters) ||
      !ReadBool(r, &t->detector_has_signature) || !ReadBool(r, &t->detector_idle) ||
      !r.F64(&t->detector_signature)) {
    return false;
  }
  t->category = static_cast<Category>(category);
  uint32_t phase_count = 0;
  if (!r.U32(&phase_count) || !CountPlausible(r, phase_count)) {
    return false;
  }
  t->phases.resize(phase_count);
  for (PersistentPhaseRecord& p : t->phases) {
    uint32_t entry_count = 0;
    if (!r.F64(&p.signature) || !r.F64(&p.baseline_ipc) ||
        !ReadBool(r, &p.baseline_valid) || !r.U32(&entry_count) ||
        !CountPlausible(r, entry_count)) {
      return false;
    }
    p.table.resize(entry_count);
    for (auto& [ways, norm_ipc] : p.table) {
      if (!r.U32(&ways) || !r.F64(&norm_ipc)) {
        return false;
      }
    }
  }
  return r.U64(&t->phase_index) && ReadBool(r, &t->has_phase) &&
         ReadBool(r, &t->measuring_baseline) && r.F64(&t->last_ipc) &&
         ReadBool(r, &t->has_last_ipc) && r.U32(&t->prev_interval_ways) &&
         ReadBool(r, &t->grow_denied) && r.U32(&t->anomaly_streak) &&
         ReadBool(r, &t->prev_active) && r.U64(&t->last_mbm);
}

void WriteState(ByteWriter& w, const ControllerPersistentState& s) {
  w.U32(kStateCodecVersion);
  w.U64(s.tick);
  w.Str(s.policy);
  w.U8(s.degraded ? 1 : 0);
  w.U32(s.consecutive_apply_failures);
  w.U32(s.degraded_clean_ticks);
  w.U64(s.next_apply_tick);
  w.U32(static_cast<uint32_t>(s.orphaned_cores.size()));
  for (uint16_t core : s.orphaned_cores) {
    w.U16(core);
  }
  w.U32(static_cast<uint32_t>(s.cos_acked_mask.size()));
  for (uint32_t mask : s.cos_acked_mask) {
    w.U32(mask);
  }
  w.U32(s.next_group_id);
  w.U32(static_cast<uint32_t>(s.tenants.size()));
  for (const PersistentTenant& t : s.tenants) {
    WriteTenant(w, t);
  }
}

bool ReadState(ByteReader& r, ControllerPersistentState* s) {
  uint32_t version = 0;
  if (!r.U32(&version) || version != kStateCodecVersion) {
    return false;
  }
  uint32_t orphan_count = 0;
  if (!r.U64(&s->tick) || !r.Str(&s->policy) || !ReadBool(r, &s->degraded) ||
      !r.U32(&s->consecutive_apply_failures) || !r.U32(&s->degraded_clean_ticks) ||
      !r.U64(&s->next_apply_tick) || !r.U32(&orphan_count) ||
      !CountPlausible(r, orphan_count)) {
    return false;
  }
  s->orphaned_cores.resize(orphan_count);
  for (uint16_t& core : s->orphaned_cores) {
    if (!r.U16(&core)) {
      return false;
    }
  }
  uint32_t cos_count = 0;
  if (!r.U32(&cos_count) || !CountPlausible(r, cos_count)) {
    return false;
  }
  s->cos_acked_mask.resize(cos_count);
  for (uint32_t& mask : s->cos_acked_mask) {
    if (!r.U32(&mask)) {
      return false;
    }
  }
  uint32_t tenant_count = 0;
  if (!r.U32(&s->next_group_id) || !r.U32(&tenant_count) ||
      !CountPlausible(r, tenant_count)) {
    return false;
  }
  s->tenants.resize(tenant_count);
  for (PersistentTenant& t : s->tenants) {
    if (!ReadTenant(r, &t)) {
      return false;
    }
  }
  return true;
}

void WriteIntent(ByteWriter& w, const DecisionIntent& intent) {
  w.U8(intent.degraded ? 1 : 0);
  w.U32(static_cast<uint32_t>(intent.targets.size()));
  for (uint32_t t : intent.targets) {
    w.U32(t);
  }
  w.U32(static_cast<uint32_t>(intent.groups.size()));
  for (uint32_t g : intent.groups) {
    w.U32(g);
  }
}

bool ReadIntent(ByteReader& r, DecisionIntent* intent) {
  uint32_t target_count = 0;
  if (!ReadBool(r, &intent->degraded) || !r.U32(&target_count) ||
      !CountPlausible(r, target_count)) {
    return false;
  }
  intent->targets.resize(target_count);
  for (uint32_t& t : intent->targets) {
    if (!r.U32(&t)) {
      return false;
    }
  }
  uint32_t group_count = 0;
  if (!r.U32(&group_count) || !CountPlausible(r, group_count)) {
    return false;
  }
  intent->groups.resize(group_count);
  for (uint32_t& g : intent->groups) {
    if (!r.U32(&g)) {
      return false;
    }
  }
  return true;
}

}  // namespace

void ByteWriter::U16(uint16_t v) {
  U8(static_cast<uint8_t>(v));
  U8(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::U32(uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    U8(static_cast<uint8_t>(v >> shift));
  }
}

void ByteWriter::U64(uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    U8(static_cast<uint8_t>(v >> shift));
  }
}

void ByteWriter::F64(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

bool ByteReader::Take(size_t n, const uint8_t** out) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_ + pos_;
  pos_ += n;
  return true;
}

bool ByteReader::U8(uint8_t* v) {
  const uint8_t* p = nullptr;
  if (!Take(1, &p)) {
    return false;
  }
  *v = p[0];
  return true;
}

bool ByteReader::U16(uint16_t* v) {
  const uint8_t* p = nullptr;
  if (!Take(2, &p)) {
    return false;
  }
  *v = static_cast<uint16_t>(p[0] | (p[1] << 8));
  return true;
}

bool ByteReader::U32(uint32_t* v) {
  const uint8_t* p = nullptr;
  if (!Take(4, &p)) {
    return false;
  }
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
  return true;
}

bool ByteReader::U64(uint64_t* v) {
  const uint8_t* p = nullptr;
  if (!Take(8, &p)) {
    return false;
  }
  *v = 0;
  for (int i = 7; i >= 0; --i) {
    *v = (*v << 8) | p[i];
  }
  return true;
}

bool ByteReader::F64(double* v) {
  uint64_t bits = 0;
  if (!U64(&bits)) {
    return false;
  }
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool ByteReader::Str(std::string* s) {
  uint32_t size = 0;
  if (!U32(&size) || size > remaining()) {
    ok_ = false;
    return false;
  }
  const uint8_t* p = nullptr;
  if (!Take(size, &p)) {
    return false;
  }
  s->assign(reinterpret_cast<const char*>(p), size);
  return true;
}

std::vector<uint8_t> EncodeControllerState(const ControllerPersistentState& state) {
  ByteWriter w;
  WriteState(w, state);
  return w.Take();
}

bool DecodeControllerState(const uint8_t* data, size_t size,
                           ControllerPersistentState* out) {
  ByteReader r(data, size);
  // Trailing bytes beyond the image are rejected: a payload is exactly one
  // record, so extra bytes mean framing confusion upstream.
  return ReadState(r, out) && r.remaining() == 0;
}

std::vector<uint8_t> EncodeDecisionRecord(const ControllerPersistentState& state,
                                          const DecisionIntent& intent) {
  ByteWriter w;
  WriteState(w, state);
  WriteIntent(w, intent);
  return w.Take();
}

bool DecodeDecisionRecord(const uint8_t* data, size_t size,
                          ControllerPersistentState* state, DecisionIntent* intent) {
  ByteReader r(data, size);
  return ReadState(r, state) && ReadIntent(r, intent) && r.remaining() == 0;
}

}  // namespace dcat
