#include "src/recovery/journal.h"

#include <cstdio>

#include "src/common/crc32.h"
#include "src/recovery/state_codec.h"

namespace dcat {
namespace {

constexpr uint8_t kMagic0 = 'D';
constexpr uint8_t kMagic1 = 'J';
constexpr size_t kHeaderSize = 12;  // magic(2) type(1) reserved(1) len(4) crc(4)

uint32_t ReadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

// Attempts to parse one frame at `pos`; returns the bytes consumed (0 on
// any framing/CRC failure).
size_t TryParseFrame(const std::vector<uint8_t>& bytes, size_t pos, JournalRecord* out) {
  if (bytes.size() - pos < kHeaderSize) {
    return 0;
  }
  const uint8_t* p = bytes.data() + pos;
  if (p[0] != kMagic0 || p[1] != kMagic1) {
    return 0;
  }
  const uint8_t type = p[2];
  if (type != static_cast<uint8_t>(JournalRecordType::kSnapshot) &&
      type != static_cast<uint8_t>(JournalRecordType::kDecision)) {
    return 0;
  }
  const uint32_t payload_len = ReadLe32(p + 4);
  if (payload_len > bytes.size() - pos - kHeaderSize) {
    return 0;  // torn tail: the record was cut mid-write
  }
  const uint32_t stored_crc = ReadLe32(p + 8);
  // CRC covers type + reserved + len + payload (everything but magic+crc).
  uint32_t crc = Crc32(p + 2, 2);
  crc = Crc32(p + 4, 4, crc);
  crc = Crc32(p + kHeaderSize, payload_len, crc);
  if (crc != stored_crc) {
    return 0;
  }
  out->type = static_cast<JournalRecordType>(type);
  out->payload.assign(p + kHeaderSize, p + kHeaderSize + payload_len);
  return kHeaderSize + payload_len;
}

}  // namespace

std::vector<uint8_t> FrameRecord(JournalRecordType type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderSize + payload.size());
  frame.push_back(kMagic0);
  frame.push_back(kMagic1);
  frame.push_back(static_cast<uint8_t>(type));
  frame.push_back(0);  // reserved
  const uint32_t len = static_cast<uint32_t>(payload.size());
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<uint8_t>(len >> shift));
  }
  uint32_t crc = Crc32(frame.data() + 2, 2);
  crc = Crc32(frame.data() + 4, 4, crc);
  crc = Crc32(payload.data(), payload.size(), crc);
  for (int shift = 0; shift < 32; shift += 8) {
    frame.push_back(static_cast<uint8_t>(crc >> shift));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

JournalParseResult ParseJournal(const std::vector<uint8_t>& bytes) {
  JournalParseResult result;
  size_t pos = 0;
  bool in_bad_region = false;
  while (pos < bytes.size()) {
    JournalRecord record;
    const size_t consumed = TryParseFrame(bytes, pos, &record);
    if (consumed > 0) {
      result.records.push_back(std::move(record));
      pos += consumed;
      in_bad_region = false;
      continue;
    }
    // Resynchronize: skip to the next candidate magic byte. One contiguous
    // bad region counts once, however many bytes it spans.
    if (!in_bad_region) {
      ++result.torn_records;
      in_bad_region = true;
    }
    ++pos;
    while (pos < bytes.size() && bytes[pos] != kMagic0) {
      ++pos;
    }
  }
  return result;
}

bool FileJournalStorage::Append(const void* data, size_t size) {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(data, 1, size, f) == size && std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

bool FileJournalStorage::Rewrite(const void* data, size_t size) {
  const std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(data, 1, size, f) == size && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path_.c_str()) == 0;
}

std::vector<uint8_t> FileJournalStorage::ReadAll() const {
  std::vector<uint8_t> bytes;
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    return bytes;
  }
  uint8_t buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  std::fclose(f);
  return bytes;
}

void JournalWriter::Persist(const std::vector<uint8_t>& frame, bool rewrite) {
  const bool ok = rewrite ? storage_->Rewrite(frame.data(), frame.size())
                          : storage_->Append(frame.data(), frame.size());
  if (metrics_ != nullptr) {
    metrics_->counter(ok ? "journal.records_total" : "journal.append_failures").Increment();
  }
}

void JournalWriter::OnContractChange(const ControllerPersistentState& state) {
  Persist(FrameRecord(JournalRecordType::kSnapshot, EncodeControllerState(state)),
          /*rewrite=*/false);
}

void JournalWriter::OnDecision(const ControllerPersistentState& state,
                               const DecisionIntent& intent) {
  // Compaction replaces the journal with this record alone — safe at any
  // moment because the decision record carries the full state, and correct
  // mid-tick because the decision record is always the journal's last word
  // on the tick.
  const bool compact =
      options_.snapshot_every > 0 && ++decisions_since_compact_ >= options_.snapshot_every;
  if (compact) {
    decisions_since_compact_ = 0;
  }
  Persist(FrameRecord(JournalRecordType::kDecision, EncodeDecisionRecord(state, intent)),
          /*rewrite=*/compact);
}

void JournalWriter::OnRecovered(const ControllerPersistentState& state) {
  // Recovery adopted a reconciled image: restart the journal from it so
  // the next crash replays the post-recovery truth, not the pre-crash one.
  decisions_since_compact_ = 0;
  Persist(FrameRecord(JournalRecordType::kSnapshot, EncodeControllerState(state)),
          /*rewrite=*/true);
}

}  // namespace dcat
