// The write-ahead decision journal: CRC-framed, append-only, compacting.
//
// Record framing (little-endian):
//
//   'D' 'J' | type u8 | reserved u8 | payload_len u32 | crc32 u32 | payload
//
// The CRC (IEEE 802.3) covers type, reserved, payload_len and the payload,
// so a torn tail — a record cut mid-write by the crash the journal exists
// to survive — or a bit-flipped body is detected, never trusted. The
// reader resynchronizes on the next valid frame after a bad one, so a
// corrupt record in the middle of the file costs that record, not the
// good tail behind it.
//
// Every record carries the controller's FULL state (records are
// self-contained, see src/core/controller_state.h), which buys two things:
//   * Recovery needs only the last good record — no replay of history.
//   * Compaction is trivial: rewrite the file keeping the latest record.
//
// JournalWriter is the ControllerJournal implementation the controller
// calls before every apply (kDecision: state + intent) and after every
// contract change or finished recovery (kSnapshot: state at rest). It
// compacts every `snapshot_every` decisions, bounding the file at a
// handful of records.
#ifndef SRC_RECOVERY_JOURNAL_H_
#define SRC_RECOVERY_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/controller_state.h"
#include "src/telemetry/metrics.h"

namespace dcat {

enum class JournalRecordType : uint8_t {
  kSnapshot = 1,  // controller state at rest (no in-flight intent)
  kDecision = 2,  // pre-apply state + the intent about to be programmed
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kSnapshot;
  std::vector<uint8_t> payload;
};

// Byte-level persistence behind the journal. Append must leave earlier
// bytes intact on failure; Rewrite replaces the whole journal (compaction)
// as atomically as the medium allows.
class JournalStorage {
 public:
  virtual ~JournalStorage() = default;

  virtual bool Append(const void* data, size_t size) = 0;
  virtual bool Rewrite(const void* data, size_t size) = 0;
  virtual std::vector<uint8_t> ReadAll() const = 0;
};

// In-memory storage for tests and the crash harness; `mutable_bytes`
// exists so corruption tests can truncate and bit-flip at will.
class MemoryJournalStorage : public JournalStorage {
 public:
  bool Append(const void* data, size_t size) override {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
    return true;
  }
  bool Rewrite(const void* data, size_t size) override {
    bytes_.clear();
    return Append(data, size);
  }
  std::vector<uint8_t> ReadAll() const override { return bytes_; }

  std::vector<uint8_t>& mutable_bytes() { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

// File-backed storage (dcatd --journal=FILE). Appends are flushed per
// record; Rewrite goes through a temp file + rename so a crash during
// compaction leaves either the old or the new journal, never a mix.
class FileJournalStorage : public JournalStorage {
 public:
  explicit FileJournalStorage(std::string path) : path_(std::move(path)) {}

  bool Append(const void* data, size_t size) override;
  bool Rewrite(const void* data, size_t size) override;
  std::vector<uint8_t> ReadAll() const override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Frames one record (header + CRC + payload) ready for storage.
std::vector<uint8_t> FrameRecord(JournalRecordType type,
                                 const std::vector<uint8_t>& payload);

struct JournalParseResult {
  std::vector<JournalRecord> records;
  // Corrupt regions skipped (counted once per contiguous bad region, torn
  // tail included).
  uint64_t torn_records = 0;
};

// Scans the whole byte stream: CRC-valid frames are collected in order,
// bad regions are skipped by resynchronizing on the next valid frame.
JournalParseResult ParseJournal(const std::vector<uint8_t>& bytes);

// The ControllerJournal implementation wired into DcatController.
// Persistence failures are counted (journal.append_failures) and swallowed:
// the journal never costs the control loop availability.
class JournalWriter : public ControllerJournal {
 public:
  struct Options {
    // Compact (rewrite to the latest record alone) after this many
    // appended decisions. 0 disables compaction.
    uint32_t snapshot_every = 32;
  };

  explicit JournalWriter(JournalStorage* storage) : JournalWriter(storage, Options()) {}
  JournalWriter(JournalStorage* storage, Options options)
      : storage_(storage), options_(options) {}

  // Metrics live in the controller's registry; attach after recovery wires
  // the controller up (null = no metrics).
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  void OnContractChange(const ControllerPersistentState& state) override;
  void OnDecision(const ControllerPersistentState& state,
                  const DecisionIntent& intent) override;
  void OnRecovered(const ControllerPersistentState& state) override;

 private:
  void Persist(const std::vector<uint8_t>& frame, bool rewrite);

  JournalStorage* storage_;
  Options options_;
  MetricsRegistry* metrics_ = nullptr;
  uint32_t decisions_since_compact_ = 0;
};

}  // namespace dcat

#endif  // SRC_RECOVERY_JOURNAL_H_
