// Fault-injecting decorator over a JournalStorage.
//
// Two fault shapes matter for a write-ahead journal:
//   * a torn append — the process dies mid-write, leaving a prefix of the
//     record on disk (CrashDuringAppend); the reader must detect the torn
//     tail and recover from the last good record, and
//   * a failed append — the medium rejects the write (FailNextAppend); the
//     journal writer must count it and carry on without blocking the
//     control loop.
#ifndef SRC_FAULTS_FAULTY_JOURNAL_H_
#define SRC_FAULTS_FAULTY_JOURNAL_H_

#include <algorithm>
#include <cstdint>

#include "src/faults/crash.h"
#include "src/recovery/journal.h"

namespace dcat {

class FaultyJournalStorage : public JournalStorage {
 public:
  explicit FaultyJournalStorage(JournalStorage* inner) : inner_(inner) {}

  // The next Append persists only the first `keep_bytes` of the record,
  // then throws CrashPointHit — a process death mid-write.
  void CrashDuringAppend(size_t keep_bytes) {
    crash_armed_ = true;
    crash_keep_bytes_ = keep_bytes;
  }
  // The next `count` Appends return false without persisting anything.
  void FailNextAppend(uint32_t count = 1) { fail_appends_ = count; }
  // Cancels a pending CrashDuringAppend that never fired (e.g. the write
  // the harness aimed at turned out to be a Rewrite).
  void Disarm() { crash_armed_ = false; }

  bool Append(const void* data, size_t size) override {
    if (crash_armed_) {
      crash_armed_ = false;
      const size_t keep = std::min(crash_keep_bytes_, size);
      if (keep > 0) {
        inner_->Append(data, keep);
      }
      throw CrashPointHit{"JournalAppend"};
    }
    if (fail_appends_ > 0) {
      --fail_appends_;
      return false;
    }
    return inner_->Append(data, size);
  }
  bool Rewrite(const void* data, size_t size) override {
    return inner_->Rewrite(data, size);
  }
  std::vector<uint8_t> ReadAll() const override { return inner_->ReadAll(); }

 private:
  JournalStorage* inner_;
  bool crash_armed_ = false;
  size_t crash_keep_bytes_ = 0;
  uint32_t fail_appends_ = 0;
};

}  // namespace dcat

#endif  // SRC_FAULTS_FAULTY_JOURNAL_H_
