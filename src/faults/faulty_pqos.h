// Fault-injecting decorator over any CatController + MonitoringProvider.
//
// FaultyPqos sits between the controller and the real backend and perturbs
// the control surface per its FaultPlan: kIoError on writes, silently
// dropped writes (reported kOk, never forwarded — the backend drifts from
// what the controller believes), and corrupted counter reads. Reads of the
// *control* surface (GetCosMask / GetCoreAssociation) always pass through to
// the inner backend: they report the truth, which is exactly what lets
// verify-after-write and reconciliation catch silent drops.
//
// Tests can also script faults explicitly (ScriptWriteFault /
// ScriptCounterAnomaly) without a probabilistic plan.
#ifndef SRC_FAULTS_FAULTY_PQOS_H_
#define SRC_FAULTS_FAULTY_PQOS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "src/faults/fault_plan.h"
#include "src/pqos/pqos.h"

namespace dcat {

class FaultyPqos : public CatController, public MonitoringProvider {
 public:
  // `cat` and `monitor` are borrowed and must outlive the decorator. They
  // may be the same object (SimPqos implements both).
  FaultyPqos(CatController* cat, MonitoringProvider* monitor, FaultPlan plan = FaultPlan());

  // Advances the fault plan one control interval and resets per-write
  // attempt counters. Call once per tick, before the controller runs.
  void AdvanceTick();

  // --- CatController ---
  uint32_t NumWays() const override { return cat_->NumWays(); }
  uint8_t NumCos() const override { return cat_->NumCos(); }
  uint16_t NumCores() const override { return cat_->NumCores(); }
  uint64_t WayCapacityBytes() const override { return cat_->WayCapacityBytes(); }
  PqosStatus SetCosMask(uint8_t cos, uint32_t mask) override;
  uint32_t GetCosMask(uint8_t cos) const override { return cat_->GetCosMask(cos); }
  PqosStatus AssociateCore(uint16_t core, uint8_t cos) override;
  uint8_t GetCoreAssociation(uint16_t core) const override {
    return cat_->GetCoreAssociation(core);
  }

  // --- MonitoringProvider ---
  PerfCounterBlock ReadCounters(uint16_t core) const override;
  // Per-COS monitoring reads take the plan's monitoring faults: a read
  // error reports 0 (the resctrl node vanished), a torn read truncates the
  // cumulative value to its low 32 bits (partially-written sysfs node).
  uint64_t LlcOccupancyBytes(uint8_t cos) const override;
  uint64_t MemoryBandwidthBytes(uint8_t cos) const override;
  // Status flavors: a planned read error surfaces as kIoError (the value
  // methods above keep reporting it as 0); a torn read stays kOk — the
  // read "succeeded", the content was partial. Inner-provider statuses
  // pass through unperturbed.
  PqosStatus ReadLlcOccupancy(uint8_t cos, uint64_t* bytes) const override;
  PqosStatus ReadMemoryBandwidth(uint8_t cos, uint64_t* bytes) const override;

  // --- test scripting: scripted faults run before the plan ---
  // The next `count` calls to the given write op get `fault`.
  void ScriptWriteFault(BackendOp op, WriteFault fault, uint32_t count = 1);
  // The next `reads` ReadCounters(core) calls get `kind`.
  void ScriptCounterAnomaly(uint16_t core, CounterAnomalyKind kind, uint32_t reads = 1);

  const FaultPlan& plan() const { return plan_; }

  struct Stats {
    uint64_t injected_io_errors = 0;
    uint64_t injected_silent_drops = 0;
    uint64_t injected_counter_anomalies = 0;
    uint64_t injected_monitor_faults = 0;
    uint64_t forwarded_writes = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  // Decides the fault (scripted first, then plan) for the next attempt of
  // write (op, index) and updates the attempt counter and stats.
  WriteFault DecideWriteFault(BackendOp op, uint32_t index);
  PerfCounterBlock Corrupt(uint16_t core, const PerfCounterBlock& clean,
                           CounterAnomalyKind kind) const;
  uint64_t PerturbMonitorRead(uint8_t cos, uint64_t clean) const;
  PqosStatus PerturbMonitorStatus(uint8_t cos, PqosStatus inner, uint64_t clean,
                                  uint64_t* out) const;

  CatController* cat_;
  MonitoringProvider* monitor_;
  FaultPlan plan_;
  // mutable: ReadCounters is const in MonitoringProvider but consumes
  // scripted anomalies and counts injections.
  mutable Stats stats_;

  // Per-(op, index) attempt counts within the current tick; drives the
  // plan's burst semantics (first N attempts fail, retry N+1 succeeds).
  std::map<uint64_t, uint32_t> attempts_;

  std::deque<WriteFault> scripted_writes_[2];  // indexed by BackendOp
  mutable std::map<uint16_t, std::deque<CounterAnomalyKind>> scripted_reads_;

  // Last clean counters per core: kFrozen replays these; kNonMonotonic and
  // kWrapped corrupt relative to the fresh read. mutable because
  // ReadCounters is const in the MonitoringProvider interface.
  mutable std::map<uint16_t, PerfCounterBlock> last_clean_;
};

}  // namespace dcat

#endif  // SRC_FAULTS_FAULTY_PQOS_H_
