// Deterministic fault schedules for the FaultyPqos injection decorator.
//
// A FaultPlan turns (seed, profile) into a pure function from control-plane
// operations to faults: every decision is a stateless hash of
// (seed, tick, op, index, attempt), so replaying the same seed reproduces the
// exact fault schedule regardless of call interleaving — the property the
// chaos fuzzer relies on for byte-identical replays. The plan never fires at
// tick 0 (before the first AdvanceTick), so initial admissions always program
// the backend cleanly and faults exercise the *running* control loop.
#ifndef SRC_FAULTS_FAULT_PLAN_H_
#define SRC_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/telemetry/events.h"

namespace dcat {

// What a FaultPlan does to one CAT write attempt.
enum class WriteFault {
  kNone,        // forward to the real backend
  kIoError,     // return kIoError without touching the backend
  kSilentDrop,  // return kOk without touching the backend (silent drift)
};

// Tunable fault mix. Rates are per-decision probabilities in [0, 1].
struct FaultProfile {
  std::string name = "none";

  // Transient kIoError on SetCosMask/AssociateCore: the first
  // `transient_burst` attempts of an afflicted write fail, then it succeeds —
  // the shape a bounded-retry loop must absorb.
  double transient_write_rate = 0.0;
  uint32_t transient_burst = 2;

  // Dropped-but-reported-OK writes: the first `drop_burst` attempts of an
  // afflicted write are swallowed. Only verify-after-write catches these.
  double silent_drop_rate = 0.0;
  uint32_t drop_burst = 1;

  // Persistent outages: with probability `outage_rate` per tick, the control
  // surface goes down for outage_min_ticks..outage_max_ticks whole ticks
  // (every write attempt returns kIoError). Drives graceful degradation.
  double outage_rate = 0.0;
  uint32_t outage_min_ticks = 2;
  uint32_t outage_max_ticks = 4;

  // Per-(tick, core) counter anomalies among the enabled kinds.
  double counter_anomaly_rate = 0.0;
  bool anomaly_non_monotonic = true;
  bool anomaly_wrapped = true;
  bool anomaly_frozen = true;
  bool anomaly_garbage = true;

  // Monitoring-plane faults on per-COS MBM/occupancy reads: a failed file
  // read (the resctrl node vanished or errored — the value comes back 0)
  // and a torn read (a partially-written sysfs node yields a truncated
  // value). Per-(tick, cos) probabilities; every read of the same COS in
  // the same tick gets the same answer.
  double monitor_read_error_rate = 0.0;
  double monitor_torn_read_rate = 0.0;

  // File-I/O fault plane (the FaultyFs decorator under ResctrlPqos).
  // Decisions are per-(tick, path); within an afflicted (tick, path) the
  // burst-style faults hit the first `*_burst` attempts and then clear, so
  // an in-tick retry or rollback write can land. Torn writes are one-shot
  // (attempt 0 tears, the rewrite succeeds); content corruptions (short /
  // garbage / empty reads, vanished nodes) persist for the whole tick —
  // the node's content *is* what it is until something rewrites it.
  double file_write_error_rate = 0.0;  // Write returns kError, nothing lands
  uint32_t file_write_error_burst = 2;
  double file_torn_write_rate = 0.0;   // prefix lands, Write reports kError
  double file_read_error_rate = 0.0;   // Read returns kError
  uint32_t file_read_error_burst = 2;
  double file_retry_rate = 0.0;        // EINTR-style kRetry on read+write
  uint32_t file_retry_burst = 2;
  double file_short_read_rate = 0.0;   // Read yields a strict prefix
  double file_garbage_read_rate = 0.0; // Read yields unparseable bytes
  double file_empty_read_rate = 0.0;   // Read yields ""
  double file_vanish_rate = 0.0;       // Read returns kNotFound

  // Faults only fire while 1 <= tick <= active_ticks (0 = no upper bound).
  // Chaos runs cap this at the scenario length so a settle window after the
  // last interval is fault-free and degraded mode can prove it re-enters
  // dynamic operation.
  uint64_t active_ticks = 0;
};

// Named profiles used by `dcat_fuzz --chaos` and the chaos CI job.
FaultProfile TransientProfile();       // retry-able kIoError bursts
FaultProfile SilentDriftProfile();     // dropped-but-OK writes
FaultProfile CounterGarbageProfile();  // counter anomalies, all kinds
FaultProfile PersistentOutageProfile();  // multi-tick outages
FaultProfile MonitoringChaosProfile();  // failed + torn MBM/occupancy reads
FaultProfile MixedChaosProfile();      // everything at once

// File-I/O profiles used by `dcat_fuzz --chaos-resctrl` (FaultyFs under the
// fake-tree ResctrlPqos differential).
FaultProfile FsTransientProfile();     // open/write errors + EINTR retries
FaultProfile FsTornProfile();          // torn schemata/cpus_list writes
FaultProfile FsGarbageProfile();       // short/garbage/empty/vanished reads
FaultProfile FsMixedProfile();         // all file-I/O faults at once

// nullopt for unknown names. Accepts: "transient", "silent-drift",
// "counter-garbage", "persistent-outage", "monitoring", "mixed",
// "fs-transient", "fs-torn", "fs-garbage", "fs-mixed".
std::optional<FaultProfile> FaultProfileByName(const std::string& name);

// What a FaultPlan does to one per-COS monitoring read (MBM/occupancy).
enum class MonitorFault {
  kNone,       // forward to the real monitor
  kReadError,  // the read fails; the caller sees 0
  kTornValue,  // partially-written node: the value loses its high bits
};

// What a FaultPlan does to one FileIo operation (FaultyFs decorator).
enum class FileFault {
  kNone,       // forward to the real filesystem
  kError,      // open/read/write failure, nothing lands
  kRetry,      // EINTR-style transient; immediate retry is expected
  kTornWrite,  // a strict prefix of the content lands, Write reports kError
  kShortRead,  // the read yields a strict prefix of the real content
  kGarbage,    // the read yields unparseable bytes
  kEmpty,      // the read yields an empty string
  kVanish,     // the read reports kNotFound
};

const char* FileFaultName(FileFault fault);

// A seeded, deterministic schedule over a FaultProfile. Default-constructed
// plans are inert (profile "none", every rate 0).
class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(uint64_t seed, FaultProfile profile);

  // Advances the plan to the next control interval. Outage windows are drawn
  // here, sequentially, so they are independent of per-write call order.
  void AdvanceTick();

  uint64_t tick() const { return tick_; }
  const FaultProfile& profile() const { return profile_; }

  // True while faults may fire (tick >= 1 and within active_ticks).
  bool Active() const;

  // True while a persistent outage covers the current tick.
  bool InOutage() const;

  // Fault decision for attempt `attempt` (0-based) of a write identified by
  // (op, index) this tick. index is the COS for kSetCosMask, the core for
  // kAssociateCore.
  WriteFault OnWrite(BackendOp op, uint32_t index, uint32_t attempt) const;

  // Counter anomaly (if any) for reads of `core` this tick. Every read of
  // the same core in the same tick gets the same answer.
  std::optional<CounterAnomalyKind> OnReadCounters(uint16_t core) const;

  // Monitoring fault (if any) for per-COS MBM/occupancy reads this tick.
  MonitorFault OnMonitorRead(uint8_t cos) const;

  // Fault decision for attempt `attempt` (0-based) of a file read/write on
  // the node identified by `path_hash` this tick. Hash a root-relative
  // path (FaultyFs strips its prefix) so the schedule is independent of
  // where the fake tree happens to live.
  FileFault OnFileRead(uint64_t path_hash, uint32_t attempt) const;
  FileFault OnFileWrite(uint64_t path_hash, uint32_t attempt) const;

 private:
  // Stateless per-decision hash in [0, 1).
  double UnitHash(uint64_t stream, uint64_t a, uint64_t b) const;

  uint64_t seed_ = 0;
  FaultProfile profile_;
  uint64_t tick_ = 0;
  uint64_t outage_until_ = 0;  // outage covers ticks in [start, outage_until_)
};

}  // namespace dcat

#endif  // SRC_FAULTS_FAULT_PLAN_H_
