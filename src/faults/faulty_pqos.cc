#include "src/faults/faulty_pqos.h"

#include <utility>

namespace dcat {
namespace {

// Modulus for the "wrapped" anomaly. A real 32-bit MSR wrap is the
// motivating failure, but simulated cumulative counters stay well below
// 2^32, so a mod-2^32 wrap would be a no-op; a 24-bit wrap actually sends
// the counter backwards, which is the observable the quarantine must catch.
constexpr uint64_t kWrapModulus = uint64_t{1} << 24;

}  // namespace

FaultyPqos::FaultyPqos(CatController* cat, MonitoringProvider* monitor, FaultPlan plan)
    : cat_(cat), monitor_(monitor), plan_(std::move(plan)) {}

void FaultyPqos::AdvanceTick() {
  attempts_.clear();
  plan_.AdvanceTick();
}

WriteFault FaultyPqos::DecideWriteFault(BackendOp op, uint32_t index) {
  const uint64_t key = (static_cast<uint64_t>(op) << 32) | index;
  const uint32_t attempt = attempts_[key]++;
  WriteFault fault = WriteFault::kNone;
  std::deque<WriteFault>& scripted = scripted_writes_[static_cast<size_t>(op)];
  if (!scripted.empty()) {
    fault = scripted.front();
    scripted.pop_front();
  } else {
    fault = plan_.OnWrite(op, index, attempt);
  }
  switch (fault) {
    case WriteFault::kIoError:
      ++stats_.injected_io_errors;
      break;
    case WriteFault::kSilentDrop:
      ++stats_.injected_silent_drops;
      break;
    case WriteFault::kNone:
      ++stats_.forwarded_writes;
      break;
  }
  return fault;
}

PqosStatus FaultyPqos::SetCosMask(uint8_t cos, uint32_t mask) {
  switch (DecideWriteFault(BackendOp::kSetCosMask, cos)) {
    case WriteFault::kIoError:
      return PqosStatus::kIoError;
    case WriteFault::kSilentDrop:
      return PqosStatus::kOk;  // lie: the backend never sees the mask
    case WriteFault::kNone:
      break;
  }
  return cat_->SetCosMask(cos, mask);
}

PqosStatus FaultyPqos::AssociateCore(uint16_t core, uint8_t cos) {
  switch (DecideWriteFault(BackendOp::kAssociateCore, core)) {
    case WriteFault::kIoError:
      return PqosStatus::kIoError;
    case WriteFault::kSilentDrop:
      return PqosStatus::kOk;
    case WriteFault::kNone:
      break;
  }
  return cat_->AssociateCore(core, cos);
}

PerfCounterBlock FaultyPqos::ReadCounters(uint16_t core) const {
  const PerfCounterBlock clean = monitor_->ReadCounters(core);
  std::optional<CounterAnomalyKind> kind;
  const auto scripted = scripted_reads_.find(core);
  if (scripted != scripted_reads_.end() && !scripted->second.empty()) {
    kind = scripted->second.front();
    scripted->second.pop_front();
  } else {
    kind = plan_.OnReadCounters(core);
  }
  if (!kind.has_value()) {
    last_clean_[core] = clean;
    return clean;
  }
  ++stats_.injected_counter_anomalies;
  return Corrupt(core, clean, *kind);
}

PerfCounterBlock FaultyPqos::Corrupt(uint16_t core, const PerfCounterBlock& clean,
                                     CounterAnomalyKind kind) const {
  PerfCounterBlock bad = clean;
  switch (kind) {
    case CounterAnomalyKind::kNonMonotonic:
      // Cumulative counters jump backwards by half.
      bad.retired_instructions /= 2;
      bad.unhalted_cycles /= 2;
      bad.l1_references /= 2;
      bad.l1_misses /= 2;
      bad.l2_references /= 2;
      bad.l2_misses /= 2;
      bad.llc_references /= 2;
      bad.llc_misses /= 2;
      break;
    case CounterAnomalyKind::kWrapped:
      bad.retired_instructions %= kWrapModulus;
      bad.l1_references %= kWrapModulus;
      bad.l1_misses %= kWrapModulus;
      bad.l2_references %= kWrapModulus;
      bad.l2_misses %= kWrapModulus;
      bad.llc_references %= kWrapModulus;
      bad.llc_misses %= kWrapModulus;
      break;
    case CounterAnomalyKind::kFrozen: {
      // Replay the last clean snapshot: the counters stop advancing.
      const auto it = last_clean_.find(core);
      if (it != last_clean_.end()) {
        return it->second;
      }
      return bad;  // no prior read: freezing at the current value
    }
    case CounterAnomalyKind::kGarbage:
      // Impossible readings: more misses than references and absurd IPC.
      bad.llc_misses = bad.llc_references * 4 + 1000;
      bad.retired_instructions += uint64_t{1000000000000000};
      break;
  }
  return bad;
}

uint64_t FaultyPqos::PerturbMonitorRead(uint8_t cos, uint64_t clean) const {
  switch (plan_.OnMonitorRead(cos)) {
    case MonitorFault::kNone:
      return clean;
    case MonitorFault::kReadError:
      ++stats_.injected_monitor_faults;
      return 0;
    case MonitorFault::kTornValue:
      ++stats_.injected_monitor_faults;
      // A partially-written node: the cumulative value loses its high bits,
      // which a monotonicity check must reject as a backwards jump.
      return clean & 0xffffffffULL;
  }
  return clean;
}

uint64_t FaultyPqos::LlcOccupancyBytes(uint8_t cos) const {
  return PerturbMonitorRead(cos, monitor_->LlcOccupancyBytes(cos));
}

uint64_t FaultyPqos::MemoryBandwidthBytes(uint8_t cos) const {
  return PerturbMonitorRead(cos, monitor_->MemoryBandwidthBytes(cos));
}

PqosStatus FaultyPqos::PerturbMonitorStatus(uint8_t cos, PqosStatus inner, uint64_t clean,
                                            uint64_t* out) const {
  if (inner != PqosStatus::kOk) {
    *out = 0;
    return inner;
  }
  switch (plan_.OnMonitorRead(cos)) {
    case MonitorFault::kNone:
      *out = clean;
      return PqosStatus::kOk;
    case MonitorFault::kReadError:
      ++stats_.injected_monitor_faults;
      *out = 0;
      return PqosStatus::kIoError;
    case MonitorFault::kTornValue:
      ++stats_.injected_monitor_faults;
      *out = clean & 0xffffffffULL;
      return PqosStatus::kOk;
  }
  *out = clean;
  return PqosStatus::kOk;
}

PqosStatus FaultyPqos::ReadLlcOccupancy(uint8_t cos, uint64_t* bytes) const {
  uint64_t clean = 0;
  const PqosStatus inner = monitor_->ReadLlcOccupancy(cos, &clean);
  return PerturbMonitorStatus(cos, inner, clean, bytes);
}

PqosStatus FaultyPqos::ReadMemoryBandwidth(uint8_t cos, uint64_t* bytes) const {
  uint64_t clean = 0;
  const PqosStatus inner = monitor_->ReadMemoryBandwidth(cos, &clean);
  return PerturbMonitorStatus(cos, inner, clean, bytes);
}

void FaultyPqos::ScriptWriteFault(BackendOp op, WriteFault fault, uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    scripted_writes_[static_cast<size_t>(op)].push_back(fault);
  }
}

void FaultyPqos::ScriptCounterAnomaly(uint16_t core, CounterAnomalyKind kind,
                                      uint32_t reads) {
  for (uint32_t i = 0; i < reads; ++i) {
    scripted_reads_[core].push_back(kind);
  }
}

}  // namespace dcat
