// Crash-point injection for the crash-restart fuzzer.
//
// A "crash" in this harness is the controller process dying at an
// inconvenient instant. In-process we simulate it by throwing CrashPointHit
// out of the control loop: the harness catches it, destroys the controller
// object (taking all in-memory state with it, exactly like a SIGKILL), and
// rebuilds one through the recovery path. The simulated hardware and the
// journal storage survive — they are the host machine, not the process.
//
// CrashingCat is a CatController decorator that throws on the N-th write
// operation (SetCosMask or AssociateCore counted together) after arming,
// *before* the write reaches the backend — the sharpest possible cut
// through an apply transaction. Reads always pass through.
#ifndef SRC_FAULTS_CRASH_H_
#define SRC_FAULTS_CRASH_H_

#include <cstdint>
#include <string>

#include "src/pqos/pqos.h"

namespace dcat {

// Thrown at an armed crash point; `where` names the cut for diagnostics.
struct CrashPointHit {
  std::string where;
};

class CrashingCat : public CatController {
 public:
  explicit CrashingCat(CatController* inner) : inner_(inner) {}

  // The `nth` write operation from now (1-based) throws CrashPointHit
  // before reaching the backend. Arm(0) disarms.
  void Arm(uint64_t nth) { remaining_ = nth; }
  bool armed() const { return remaining_ > 0; }
  // Write operations forwarded since construction (for sizing Arm sweeps).
  uint64_t writes_seen() const { return writes_seen_; }

  uint32_t NumWays() const override { return inner_->NumWays(); }
  uint8_t NumCos() const override { return inner_->NumCos(); }
  uint16_t NumCores() const override { return inner_->NumCores(); }
  uint64_t WayCapacityBytes() const override { return inner_->WayCapacityBytes(); }

  PqosStatus SetCosMask(uint8_t cos, uint32_t mask) override {
    MaybeCrash("SetCosMask");
    return inner_->SetCosMask(cos, mask);
  }
  uint32_t GetCosMask(uint8_t cos) const override { return inner_->GetCosMask(cos); }
  PqosStatus AssociateCore(uint16_t core, uint8_t cos) override {
    MaybeCrash("AssociateCore");
    return inner_->AssociateCore(core, cos);
  }
  uint8_t GetCoreAssociation(uint16_t core) const override {
    return inner_->GetCoreAssociation(core);
  }

 private:
  void MaybeCrash(const char* op) {
    ++writes_seen_;
    if (remaining_ > 0 && --remaining_ == 0) {
      throw CrashPointHit{op};
    }
  }

  CatController* inner_;
  uint64_t remaining_ = 0;
  uint64_t writes_seen_ = 0;
};

}  // namespace dcat

#endif  // SRC_FAULTS_CRASH_H_
