// Fault-injecting decorator over the FileIo seam (src/pqos/file_io.h).
//
// FaultyFs sits between ResctrlPqos and the real filesystem and perturbs
// file operations per its FaultPlan: transient open/write errors, torn
// writes (a strict prefix of the content lands while the call reports
// failure), EINTR-style retryable errors, short reads, garbage and empty
// node contents, and vanished nodes. Decisions hash (seed, tick, op,
// path, attempt), so the same seed replays the same fault schedule; paths
// are hashed relative to `strip_prefix` so the schedule is independent of
// where the fake tree lives on disk.
//
// Tests can also script faults explicitly (ScriptReadFault /
// ScriptWriteFault, optionally matched to a path substring) without a
// probabilistic plan; scripted faults run before the plan.
#ifndef SRC_FAULTS_FAULTY_FS_H_
#define SRC_FAULTS_FAULTY_FS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "src/faults/fault_plan.h"
#include "src/pqos/file_io.h"

namespace dcat {

class FaultyFs : public FileIo {
 public:
  // `inner` is borrowed and must outlive the decorator. `strip_prefix` is
  // removed from the front of every path before hashing (pass the resctrl
  // root so fault decisions key on "dcat_cos3/schemata", not a temp dir).
  explicit FaultyFs(FileIo* inner, FaultPlan plan = FaultPlan(),
                    std::string strip_prefix = "");

  // Advances the fault plan one control interval and resets per-path
  // attempt counters. Call once per tick, before the backend is driven.
  void AdvanceTick();

  // FileIo:
  FileIoStatus Read(const std::string& path, std::string* out) const override;
  FileIoStatus Write(const std::string& path, const std::string& content) override;
  // Directory ops pass through: the fault taxonomy targets node content.
  FileIoStatus CreateDirs(const std::string& path) override;
  bool IsDir(const std::string& path) const override;

  // --- test scripting: the next `count` matching calls get `fault`.
  // `path_substring` empty = any path; matched against the full path.
  void ScriptReadFault(FileFault fault, uint32_t count = 1,
                       std::string path_substring = "");
  void ScriptWriteFault(FileFault fault, uint32_t count = 1,
                        std::string path_substring = "");

  const FaultPlan& plan() const { return plan_; }

  struct Stats {
    uint64_t injected_read_faults = 0;
    uint64_t injected_write_faults = 0;
    uint64_t torn_writes = 0;
    uint64_t forwarded_reads = 0;
    uint64_t forwarded_writes = 0;
  };
  const Stats& stats() const { return stats_; }
  uint64_t injected_total() const {
    return stats_.injected_read_faults + stats_.injected_write_faults;
  }

 private:
  struct Scripted {
    FileFault fault = FileFault::kNone;
    uint32_t count = 0;
    std::string substring;  // empty = any path
  };

  uint64_t PathHash(const std::string& path) const;
  FileFault Decide(bool is_write, const std::string& path) const;
  static std::string Truncate(const std::string& content);

  FileIo* inner_;
  FaultPlan plan_;
  std::string strip_prefix_;
  // mutable: Read is const in FileIo but consumes scripted faults, counts
  // attempts, and updates stats.
  mutable Stats stats_;
  mutable std::map<uint64_t, uint32_t> attempts_;  // per-(op, path) this tick
  mutable std::deque<Scripted> scripted_reads_;
  mutable std::deque<Scripted> scripted_writes_;
};

}  // namespace dcat

#endif  // SRC_FAULTS_FAULTY_FS_H_
