#include "src/faults/fault_plan.h"

#include <array>

#include "src/common/rng.h"

namespace dcat {
namespace {

// Decision streams keep the hash inputs of unrelated fault families
// disjoint even when (tick, index) collide.
enum Stream : uint64_t {
  kStreamWriteKind = 1,
  kStreamOutageStart = 2,
  kStreamOutageLength = 3,
  kStreamAnomalyFire = 4,
  kStreamAnomalyKind = 5,
  kStreamMonitorFault = 6,
  kStreamFileRead = 7,
  kStreamFileWrite = 8,
};

uint64_t Mix(uint64_t seed, uint64_t stream, uint64_t a, uint64_t b) {
  uint64_t state = seed ^ (stream * 0x9e3779b97f4a7c15ULL);
  (void)SplitMix64(state);
  state ^= a * 0xbf58476d1ce4e5b9ULL;
  (void)SplitMix64(state);
  state ^= b * 0x94d049bb133111ebULL;
  return SplitMix64(state);
}

}  // namespace

FaultProfile TransientProfile() {
  FaultProfile p;
  p.name = "transient";
  p.transient_write_rate = 0.15;
  p.transient_burst = 2;
  return p;
}

FaultProfile SilentDriftProfile() {
  FaultProfile p;
  p.name = "silent-drift";
  p.silent_drop_rate = 0.15;
  p.drop_burst = 1;
  return p;
}

FaultProfile CounterGarbageProfile() {
  FaultProfile p;
  p.name = "counter-garbage";
  p.counter_anomaly_rate = 0.10;
  return p;
}

FaultProfile PersistentOutageProfile() {
  FaultProfile p;
  p.name = "persistent-outage";
  p.outage_rate = 0.08;
  p.outage_min_ticks = 3;
  p.outage_max_ticks = 6;
  return p;
}

FaultProfile MonitoringChaosProfile() {
  FaultProfile p;
  p.name = "monitoring";
  p.monitor_read_error_rate = 0.10;
  p.monitor_torn_read_rate = 0.10;
  return p;
}

FaultProfile MixedChaosProfile() {
  FaultProfile p;
  p.name = "mixed";
  p.transient_write_rate = 0.10;
  p.transient_burst = 2;
  p.silent_drop_rate = 0.08;
  p.drop_burst = 1;
  p.outage_rate = 0.04;
  p.outage_min_ticks = 2;
  p.outage_max_ticks = 4;
  p.counter_anomaly_rate = 0.06;
  p.monitor_read_error_rate = 0.04;
  p.monitor_torn_read_rate = 0.04;
  return p;
}

FaultProfile FsTransientProfile() {
  FaultProfile p;
  p.name = "fs-transient";
  p.file_write_error_rate = 0.12;
  p.file_write_error_burst = 2;
  p.file_read_error_rate = 0.08;
  p.file_read_error_burst = 2;
  p.file_retry_rate = 0.15;
  p.file_retry_burst = 2;
  return p;
}

FaultProfile FsTornProfile() {
  FaultProfile p;
  p.name = "fs-torn";
  p.file_torn_write_rate = 0.15;
  return p;
}

FaultProfile FsGarbageProfile() {
  FaultProfile p;
  p.name = "fs-garbage";
  p.file_short_read_rate = 0.06;
  p.file_garbage_read_rate = 0.06;
  p.file_empty_read_rate = 0.04;
  p.file_vanish_rate = 0.06;
  return p;
}

FaultProfile FsMixedProfile() {
  FaultProfile p;
  p.name = "fs-mixed";
  p.file_write_error_rate = 0.06;
  p.file_write_error_burst = 2;
  p.file_torn_write_rate = 0.06;
  p.file_read_error_rate = 0.04;
  p.file_read_error_burst = 2;
  p.file_retry_rate = 0.08;
  p.file_retry_burst = 2;
  p.file_short_read_rate = 0.03;
  p.file_garbage_read_rate = 0.03;
  p.file_empty_read_rate = 0.02;
  p.file_vanish_rate = 0.03;
  return p;
}

std::optional<FaultProfile> FaultProfileByName(const std::string& name) {
  if (name == "transient") return TransientProfile();
  if (name == "silent-drift") return SilentDriftProfile();
  if (name == "counter-garbage") return CounterGarbageProfile();
  if (name == "persistent-outage") return PersistentOutageProfile();
  if (name == "monitoring") return MonitoringChaosProfile();
  if (name == "mixed") return MixedChaosProfile();
  if (name == "fs-transient") return FsTransientProfile();
  if (name == "fs-torn") return FsTornProfile();
  if (name == "fs-garbage") return FsGarbageProfile();
  if (name == "fs-mixed") return FsMixedProfile();
  return std::nullopt;
}

const char* FileFaultName(FileFault fault) {
  switch (fault) {
    case FileFault::kNone:
      return "none";
    case FileFault::kError:
      return "error";
    case FileFault::kRetry:
      return "retry";
    case FileFault::kTornWrite:
      return "torn-write";
    case FileFault::kShortRead:
      return "short-read";
    case FileFault::kGarbage:
      return "garbage";
    case FileFault::kEmpty:
      return "empty";
    case FileFault::kVanish:
      return "vanish";
  }
  return "?";
}

FaultPlan::FaultPlan(uint64_t seed, FaultProfile profile)
    : seed_(seed), profile_(std::move(profile)) {}

double FaultPlan::UnitHash(uint64_t stream, uint64_t a, uint64_t b) const {
  // 53 mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Mix(seed_, stream, a, b) >> 11) * 0x1.0p-53;
}

void FaultPlan::AdvanceTick() {
  ++tick_;
  if (!Active() || profile_.outage_rate <= 0.0) {
    return;
  }
  // Outages are drawn sequentially and never overlap: a tick already inside
  // an outage window cannot start a new one.
  if (tick_ < outage_until_) {
    return;
  }
  if (UnitHash(kStreamOutageStart, tick_, 0) < profile_.outage_rate) {
    const uint64_t span = profile_.outage_max_ticks > profile_.outage_min_ticks
                              ? profile_.outage_max_ticks - profile_.outage_min_ticks + 1
                              : 1;
    const uint64_t length =
        profile_.outage_min_ticks +
        Mix(seed_, kStreamOutageLength, tick_, 0) % span;
    outage_until_ = tick_ + length;
  }
}

bool FaultPlan::Active() const {
  if (tick_ == 0) {
    return false;
  }
  return profile_.active_ticks == 0 || tick_ <= profile_.active_ticks;
}

bool FaultPlan::InOutage() const { return Active() && tick_ < outage_until_; }

WriteFault FaultPlan::OnWrite(BackendOp op, uint32_t index, uint32_t attempt) const {
  if (!Active()) {
    return WriteFault::kNone;
  }
  if (InOutage()) {
    return WriteFault::kIoError;  // the whole control surface is down
  }
  const uint64_t key = (static_cast<uint64_t>(op) << 32) | index;
  const double roll = UnitHash(kStreamWriteKind, tick_, key);
  if (roll < profile_.transient_write_rate) {
    return attempt < profile_.transient_burst ? WriteFault::kIoError : WriteFault::kNone;
  }
  if (roll < profile_.transient_write_rate + profile_.silent_drop_rate) {
    return attempt < profile_.drop_burst ? WriteFault::kSilentDrop : WriteFault::kNone;
  }
  return WriteFault::kNone;
}

std::optional<CounterAnomalyKind> FaultPlan::OnReadCounters(uint16_t core) const {
  if (!Active() || profile_.counter_anomaly_rate <= 0.0) {
    return std::nullopt;
  }
  if (UnitHash(kStreamAnomalyFire, tick_, core) >= profile_.counter_anomaly_rate) {
    return std::nullopt;
  }
  std::array<CounterAnomalyKind, 4> enabled{};
  size_t n = 0;
  if (profile_.anomaly_non_monotonic) enabled[n++] = CounterAnomalyKind::kNonMonotonic;
  if (profile_.anomaly_wrapped) enabled[n++] = CounterAnomalyKind::kWrapped;
  if (profile_.anomaly_frozen) enabled[n++] = CounterAnomalyKind::kFrozen;
  if (profile_.anomaly_garbage) enabled[n++] = CounterAnomalyKind::kGarbage;
  if (n == 0) {
    return std::nullopt;
  }
  return enabled[Mix(seed_, kStreamAnomalyKind, tick_, core) % n];
}

FileFault FaultPlan::OnFileRead(uint64_t path_hash, uint32_t attempt) const {
  if (!Active()) {
    return FileFault::kNone;
  }
  const double roll = UnitHash(kStreamFileRead, tick_, path_hash);
  double edge = profile_.file_read_error_rate;
  if (roll < edge) {
    return attempt < profile_.file_read_error_burst ? FileFault::kError : FileFault::kNone;
  }
  if (roll < (edge += profile_.file_retry_rate)) {
    return attempt < profile_.file_retry_burst ? FileFault::kRetry : FileFault::kNone;
  }
  // Content corruptions persist for the whole tick: the node holds the same
  // bytes no matter how often it is re-read.
  if (roll < (edge += profile_.file_short_read_rate)) {
    return FileFault::kShortRead;
  }
  if (roll < (edge += profile_.file_garbage_read_rate)) {
    return FileFault::kGarbage;
  }
  if (roll < (edge += profile_.file_empty_read_rate)) {
    return FileFault::kEmpty;
  }
  if (roll < (edge += profile_.file_vanish_rate)) {
    return FileFault::kVanish;
  }
  return FileFault::kNone;
}

FileFault FaultPlan::OnFileWrite(uint64_t path_hash, uint32_t attempt) const {
  if (!Active()) {
    return FileFault::kNone;
  }
  const double roll = UnitHash(kStreamFileWrite, tick_, path_hash);
  double edge = profile_.file_write_error_rate;
  if (roll < edge) {
    return attempt < profile_.file_write_error_burst ? FileFault::kError : FileFault::kNone;
  }
  // Torn writes are one-shot: the first attempt tears, the rollback or
  // retry rewrite of the same node lands — the shape read-back-and-restore
  // must absorb.
  if (roll < (edge += profile_.file_torn_write_rate)) {
    return attempt == 0 ? FileFault::kTornWrite : FileFault::kNone;
  }
  if (roll < (edge += profile_.file_retry_rate)) {
    return attempt < profile_.file_retry_burst ? FileFault::kRetry : FileFault::kNone;
  }
  return FileFault::kNone;
}

MonitorFault FaultPlan::OnMonitorRead(uint8_t cos) const {
  if (!Active()) {
    return MonitorFault::kNone;
  }
  const double roll = UnitHash(kStreamMonitorFault, tick_, cos);
  if (roll < profile_.monitor_read_error_rate) {
    return MonitorFault::kReadError;
  }
  if (roll < profile_.monitor_read_error_rate + profile_.monitor_torn_read_rate) {
    return MonitorFault::kTornValue;
  }
  return MonitorFault::kNone;
}

}  // namespace dcat
