#include "src/faults/faulty_fs.h"

#include <utility>

namespace dcat {
namespace {

// FNV-1a over the root-relative path: stable across processes, so a fault
// schedule replays from (seed, profile) alone regardless of temp-dir names.
uint64_t Fnv1a(const std::string& text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

FaultyFs::FaultyFs(FileIo* inner, FaultPlan plan, std::string strip_prefix)
    : inner_(inner), plan_(std::move(plan)), strip_prefix_(std::move(strip_prefix)) {}

void FaultyFs::AdvanceTick() {
  attempts_.clear();
  plan_.AdvanceTick();
}

uint64_t FaultyFs::PathHash(const std::string& path) const {
  if (!strip_prefix_.empty() && path.compare(0, strip_prefix_.size(), strip_prefix_) == 0) {
    return Fnv1a(path.substr(strip_prefix_.size()));
  }
  return Fnv1a(path);
}

FileFault FaultyFs::Decide(bool is_write, const std::string& path) const {
  std::deque<Scripted>& scripted = is_write ? scripted_writes_ : scripted_reads_;
  for (auto it = scripted.begin(); it != scripted.end(); ++it) {
    if (!it->substring.empty() && path.find(it->substring) == std::string::npos) {
      continue;
    }
    const FileFault fault = it->fault;
    if (--it->count == 0) {
      scripted.erase(it);
    }
    return fault;
  }
  const uint64_t hash = PathHash(path);
  const uint64_t key = hash ^ (is_write ? 0x8000000000000000ULL : 0);
  const uint32_t attempt = attempts_[key]++;
  return is_write ? plan_.OnFileWrite(hash, attempt) : plan_.OnFileRead(hash, attempt);
}

std::string FaultyFs::Truncate(const std::string& content) {
  // A strict prefix: at least one byte is always lost.
  return content.substr(0, content.size() / 2);
}

FileIoStatus FaultyFs::Read(const std::string& path, std::string* out) const {
  switch (Decide(/*is_write=*/false, path)) {
    case FileFault::kNone:
      ++stats_.forwarded_reads;
      return inner_->Read(path, out);
    case FileFault::kRetry:
      ++stats_.injected_read_faults;
      return FileIoStatus::kRetry;
    case FileFault::kVanish:
      ++stats_.injected_read_faults;
      return FileIoStatus::kNotFound;
    case FileFault::kShortRead: {
      ++stats_.injected_read_faults;
      std::string clean;
      const FileIoStatus status = inner_->Read(path, &clean);
      if (status != FileIoStatus::kOk) {
        return status;
      }
      *out = Truncate(clean);
      return FileIoStatus::kOk;
    }
    case FileFault::kGarbage:
      ++stats_.injected_read_faults;
      *out = "0xz!#torn~node";
      return FileIoStatus::kOk;
    case FileFault::kEmpty:
      ++stats_.injected_read_faults;
      *out = "";
      return FileIoStatus::kOk;
    case FileFault::kError:
    case FileFault::kTornWrite:  // not a read fault; fail closed
      ++stats_.injected_read_faults;
      return FileIoStatus::kError;
  }
  return FileIoStatus::kError;
}

FileIoStatus FaultyFs::Write(const std::string& path, const std::string& content) {
  switch (Decide(/*is_write=*/true, path)) {
    case FileFault::kNone:
      ++stats_.forwarded_writes;
      return inner_->Write(path, content);
    case FileFault::kRetry:
      ++stats_.injected_write_faults;
      return FileIoStatus::kRetry;
    case FileFault::kTornWrite: {
      // The prefix lands in the real tree, then the call reports failure —
      // exactly what a crashed or interrupted sysfs write leaves behind.
      ++stats_.injected_write_faults;
      ++stats_.torn_writes;
      (void)inner_->Write(path, Truncate(content));
      return FileIoStatus::kError;
    }
    case FileFault::kError:
    case FileFault::kShortRead:  // read faults; fail closed on a write
    case FileFault::kGarbage:
    case FileFault::kEmpty:
    case FileFault::kVanish:
      ++stats_.injected_write_faults;
      return FileIoStatus::kError;
  }
  return FileIoStatus::kError;
}

FileIoStatus FaultyFs::CreateDirs(const std::string& path) {
  return inner_->CreateDirs(path);
}

bool FaultyFs::IsDir(const std::string& path) const { return inner_->IsDir(path); }

void FaultyFs::ScriptReadFault(FileFault fault, uint32_t count, std::string path_substring) {
  if (count == 0) {
    return;
  }
  scripted_reads_.push_back(Scripted{fault, count, std::move(path_substring)});
}

void FaultyFs::ScriptWriteFault(FileFault fault, uint32_t count, std::string path_substring) {
  if (count == 0) {
    return;
  }
  scripted_writes_.push_back(Scripted{fault, count, std::move(path_substring)});
}

}  // namespace dcat
